//! The listener, event-driven connection layer, compute pool, and admission
//! control.
//!
//! Connections are served by a fixed pool of *event-loop driver threads*,
//! each owning a readiness set of nonblocking sockets behind the pluggable
//! [`sys::Poller`] trait (edge-triggered `epoll(7)` on Linux by default,
//! portable `poll(2)` otherwise or via `io_backend`) — an open connection
//! costs a few hundred bytes of state in a loop's slot table, not a thread,
//! so thousands of mostly-idle keep-alive connections ride on a handful of
//! threads. Each connection registers with its loop's poller once at
//! accept and changes interest only when its state machine transitions, so
//! a wait costs O(ready), not O(open connections), on the `epoll` backend.
//! One acceptor thread takes TCP connections off the listener,
//! enforces the `max_connections` bound (overflow gets an immediate `503`
//! off a dedicated rejector thread), and deals admitted sockets round-robin
//! to the loops through a wake-pipe-signalled inbox.
//!
//! Each connection is a state machine over the incremental
//! [`http::RequestBuffer`] parser:
//!
//! ```text
//! Idle → ReadingHead → ReadingBody → ComputeInFlight → Writing ─┐
//!  ↑                        (inline routes skip the queue)      │
//!  └──────────── keep-alive, budget remaining ──────────────────┤
//!                                                           Draining → closed
//! ```
//!
//! Idle and per-request read deadlines are enforced by the loop's poll
//! timeout (no timer threads, no peek slices); cheap endpoints
//! (`/v1/healthz`, `/v1/stats`, routing errors) are answered inline on the
//! loop, while pipeline work is classified by tenant and offered to the
//! weighted per-tenant [`FairQueue`], drained in deficit-round-robin order
//! by a fixed pool of *compute workers*. A worker's reply travels back to
//! the owning loop through its inbox plus a self-pipe wake, so the loop
//! never blocks on compute and a connection awaiting its response costs no
//! thread anywhere.
//!
//! Overload degrades into fast, explicit rejections instead of growing
//! buffers or latency — and it degrades per tenant: a connection stampede
//! past `max_connections` gets an immediate `503 Service Unavailable` off
//! the acceptor, a tenant that fills its own sub-queue gets `429 Too Many
//! Requests` while every other tenant keeps being served, and only a full
//! *global* request queue turns into a `503` for everyone.

use crate::api::{
    error_body, generate_response_value, item_error_value, timings_value, ApiError, BatchRequest,
    GenerateRequest, ResolvedRequest, TenantPatch, MAX_BATCH,
};
use crate::auth::{bearer_token, AuthTable, Principal, StoredKey};
use crate::histogram::TenantMetrics;
use crate::http::{self, Limits, Parse, Request, RequestBuffer, Response, ResponseEmitter};
use crate::queue::{Bounded, FairQueue, Rejection};
use crate::sys::{
    self, Event, IoBackend, IoBackendChoice, Poller, WakePipe, POLLERR, POLLHUP, POLLIN, POLLNVAL,
    POLLOUT, POLLRDHUP,
};
use rpg_obs::log as obs_log;
use rpg_obs::metrics::{Counter, Gauge, MetricsRegistry};
use rpg_obs::trace::{
    unix_ms_now, SharedRecorder, Span, SpanRecorder, StageTrace, TraceId, TraceLog, TraceRecord,
};
use rpg_repager::system::RepagerError;
use rpg_repager::TimingAggregate;
use rpg_service::{
    snapshot, valid_tenant_name, CorpusRegistry, Manifest, ManifestDiff, RegistryError,
    TenantConfig,
};
use serde::value::Value;
use serde::Deserialize;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The admission lane control-plane work (manifest reloads) is billed to —
/// reserved by tenant-name validation, so no real tenant can sit in it.
const ADMIN_LANE: &str = "__admin";

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Compute-worker threads draining the request queue (minimum 1).
    pub workers: usize,
    /// Event-loop driver threads, each multiplexing its share of the open
    /// connections over one `poll` set. `0` derives a small default from
    /// `workers` — connections no longer cost threads, so a handful of
    /// loops serves thousands of sockets.
    pub drivers: usize,
    /// Open-connection bound across all loops. Arrivals past it get an
    /// immediate `503` off the acceptor.
    pub max_connections: usize,
    /// Global request-queue bound across every tenant; overflow gets `503`.
    pub queue_capacity: usize,
    /// Per-tenant request-queue bound: a tenant stampede past this gets
    /// `429 Too Many Requests` without crowding out other tenants. Queue
    /// depth is fed by every open connection (each can have one request in
    /// flight), so under the event loop the throttle engages whenever a
    /// tenant keeps more than this many requests outstanding.
    pub tenant_queue_capacity: usize,
    /// Deficit-round-robin weights per tenant name; unlisted tenants weigh
    /// 1. A weight-2 tenant drains twice as fast when backlogged.
    pub tenant_weights: Vec<(String, u64)>,
    /// Tenant used when a request omits its `corpus` field.
    pub default_corpus: String,
    /// Whether to honour HTTP keep-alive. When `false` every response is
    /// `Connection: close` (the pre-persistent behaviour).
    pub keep_alive: bool,
    /// Exchanges served per connection before the server closes it, so one
    /// immortal socket cannot hold its slot forever (minimum 1).
    pub max_requests_per_connection: usize,
    /// How long a connection may sit idle between requests before its loop
    /// closes it.
    pub idle_timeout: Duration,
    /// Per-request wall-clock deadline: once the first byte of a request
    /// arrives, the whole head+body must follow within this long or the
    /// connection gets a `408` and a close — a slowloris trickling one
    /// byte per interval cannot reset it. On the response side it is the
    /// zero-progress bound: a reader that accepts no bytes for this long
    /// is cut off, while a slow-but-moving one keeps its connection.
    pub read_timeout: Duration,
    /// Value of the `Retry-After` header on `503`/`429` responses, in
    /// seconds.
    pub retry_after_secs: u32,
    /// Request size limits.
    pub limits: Limits,
    /// Whether requests must authenticate: `true` maps
    /// `Authorization: Bearer <key>` to a tenant principal, bills
    /// admission to it, rejects cross-tenant generates with `403` and
    /// guards the admin endpoints with `401`/`403`. `false` keeps the
    /// self-declared `corpus` field authoritative and leaves the admin
    /// endpoints open.
    pub auth_enabled: bool,
    /// The initial key table (usually [`AuthTable::from_manifest`]);
    /// swapped live by manifest reloads and edited by `PUT`/`DELETE`.
    pub auth: AuthTable,
    /// Per-tenant admission-bound overrides applied at spawn (manifest
    /// `queue` fields); retunable later via `PATCH /v1/admin/tenants`.
    pub tenant_bounds: Vec<(String, usize)>,
    /// Per-tenant in-flight compute caps applied at spawn. A tenant at its
    /// cap keeps queueing but its lane is skipped by the compute pool until
    /// a slot frees, so fairness extends past admission into the workers
    /// themselves. [`ServerConfig::with_manifest`] fills this for every
    /// manifest tenant: an explicit `inflight` field wins, otherwise the
    /// tenant gets its weighted share of the worker pool (minimum 1).
    pub tenant_inflight: Vec<(String, usize)>,
    /// Per-tenant deadline budgets in milliseconds (manifest `deadline_ms`
    /// fields): work still queued past its budget is shed with a `503`
    /// instead of computed into a result nobody is waiting for.
    pub tenant_deadlines: Vec<(String, u64)>,
    /// Deadline budget applied to requests whose tenant declares none and
    /// that carry no `x-rpg-deadline-ms` header. `None` means work never
    /// expires in the queue (the pre-shedding behaviour).
    pub default_deadline_ms: Option<u64>,
    /// Where `POST /v1/admin/reload` (and the CLI's `SIGHUP` handler)
    /// re-reads the manifest from. `None` disables wire-triggered reloads
    /// with a `409`.
    pub manifest_path: Option<String>,
    /// Which readiness backend the event loops ride on: `Auto` (the
    /// default) picks edge-triggered `epoll` on Linux and portable `poll`
    /// elsewhere; forcing `epoll` off Linux fails at spawn. Surfaced in
    /// `/v1/stats` under `connections.io_backend`.
    pub io_backend: IoBackendChoice,
    /// Completed requests at least this slow (milliseconds, head parse to
    /// last response byte) are retained as span-tree exemplars behind
    /// `GET /v1/debug/requests`. `0` retains every request. Tenants can
    /// override it with the manifest `trace_slow_ms` field.
    pub trace_slow_ms: u64,
    /// Per-tenant `trace_slow_ms` overrides (manifest `trace_slow_ms`
    /// fields); retunable later via `PATCH /v1/admin/tenants`.
    pub tenant_trace_slow: Vec<(String, u64)>,
    /// How many slow-request exemplars the trace ring retains (oldest
    /// evicted first). `0` disables span recording entirely — requests
    /// still get (and echo) trace IDs, but no span trees are kept.
    pub trace_log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: rpg_service::default_threads(),
            drivers: 0,
            max_connections: 1024,
            queue_capacity: 64,
            tenant_queue_capacity: 8,
            tenant_weights: Vec::new(),
            default_corpus: "default".to_string(),
            keep_alive: true,
            max_requests_per_connection: 100,
            idle_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            limits: Limits::default(),
            auth_enabled: false,
            auth: AuthTable::new(),
            tenant_bounds: Vec::new(),
            tenant_inflight: Vec::new(),
            tenant_deadlines: Vec::new(),
            default_deadline_ms: None,
            manifest_path: None,
            io_backend: IoBackendChoice::default(),
            trace_slow_ms: 0,
            tenant_trace_slow: Vec::new(),
            trace_log_capacity: 256,
        }
    }
}

impl ServerConfig {
    /// The event-loop pool size after resolving the `0 = auto` default.
    /// Loops multiplex, so the default stays small: one loop per four
    /// compute workers, between 1 and 4.
    fn driver_count(&self) -> usize {
        if self.drivers > 0 {
            self.drivers
        } else {
            (self.workers.max(1) / 4).clamp(1, 4)
        }
    }

    /// Folds a manifest's server-side tuning into the config: per-tenant
    /// DRR weights, queue bounds, in-flight caps, deadline budgets, the
    /// default tenant, and the key table. (The corpus side — building the
    /// tenants — is [`CorpusRegistry::apply_manifest`]'s job.) Set
    /// `workers` *before* calling this: the derived in-flight caps are each
    /// tenant's weighted share of the worker pool.
    pub fn with_manifest(mut self, manifest: &Manifest) -> ServerConfig {
        self.tenant_weights = manifest
            .tenants_sorted()
            .iter()
            .filter_map(|(name, config)| config.weight.map(|w| (name.to_string(), w)))
            .collect();
        self.tenant_bounds = manifest
            .tenants_sorted()
            .iter()
            .filter_map(|(name, config)| config.queue.map(|q| (name.to_string(), q)))
            .collect();
        self.tenant_inflight = manifest_inflight_caps(manifest, self.workers);
        self.tenant_deadlines = manifest
            .tenants_sorted()
            .iter()
            .filter_map(|(name, config)| config.deadline_ms.map(|d| (name.to_string(), d)))
            .collect();
        self.tenant_trace_slow = manifest
            .tenants_sorted()
            .iter()
            .filter_map(|(name, config)| config.trace_slow_ms.map(|ms| (name.to_string(), ms)))
            .collect();
        if let Some(default) = manifest.default_tenant() {
            self.default_corpus = default.to_string();
        }
        self.auth = AuthTable::from_manifest(manifest);
        self
    }
}

/// Resolves every manifest tenant's in-flight compute cap: the explicit
/// `inflight` field when present, otherwise the tenant's weighted share of
/// the worker pool (minimum 1), so a heavy tenant cannot occupy every
/// worker while a light one holds queued work.
fn manifest_inflight_caps(manifest: &Manifest, workers: usize) -> Vec<(String, usize)> {
    let workers = workers.max(1) as u64;
    let tenants = manifest.tenants_sorted();
    let total_weight: u64 = tenants
        .iter()
        .map(|(_, config)| config.weight.unwrap_or(1).max(1))
        .sum::<u64>()
        .max(1);
    tenants
        .iter()
        .map(|(name, config)| {
            let cap = config.inflight.unwrap_or_else(|| {
                let weight = config.weight.unwrap_or(1).max(1);
                ((workers * weight / total_weight).max(1)) as usize
            });
            (name.to_string(), cap)
        })
        .collect()
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Connections currently open (admitted and not yet closed).
    pub open_connections: u64,
    /// Requests rejected with `503` (connection overflow at the acceptor,
    /// or a full global request queue).
    pub rejected: u64,
    /// Requests rejected with `429` because their tenant's sub-queue was
    /// full.
    pub throttled: u64,
    /// HTTP exchanges completed (any status).
    pub handled: u64,
    /// `2xx` responses.
    pub ok: u64,
    /// `4xx` responses.
    pub client_errors: u64,
    /// `5xx` responses.
    pub server_errors: u64,
    /// Aggregated pipeline timings over every fresh (non-cached) run.
    pub pipeline: TimingAggregate,
}

/// The server-wide counters, every one a handle into the shared
/// [`MetricsRegistry`]: the request path bumps the same atomics that
/// `GET /metrics` and `/v1/stats` render, so the two views can never
/// disagree. The gauges and cache counters are *sampled* at scrape time
/// from their authoritative sources (the open-connection count, the fair
/// queue, the result cache) rather than double-bookkept on the hot path.
struct Counters {
    accepted: Counter,
    rejected: Counter,
    throttled: Counter,
    ok: Counter,
    client_errors: Counter,
    server_errors: Counter,
    open_connections: Gauge,
    queue_depth: Gauge,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_entries: Gauge,
    timings: Mutex<TimingAggregate>,
}

impl Counters {
    fn registered(registry: &MetricsRegistry) -> Counters {
        let class = |class| {
            registry.counter(
                "rpg_responses_total",
                "HTTP responses completed, by status class.",
                &[("class", class)],
            )
        };
        Counters {
            accepted: registry.counter(
                "rpg_connections_accepted_total",
                "Connections accepted off the listener.",
                &[],
            ),
            rejected: registry.counter(
                "rpg_requests_rejected_total",
                "Requests rejected with 503: connection overflow or a full global queue.",
                &[],
            ),
            throttled: registry.counter(
                "rpg_requests_throttled_total",
                "Requests rejected with 429 because their tenant's sub-queue was full.",
                &[],
            ),
            ok: class("2xx"),
            client_errors: class("4xx"),
            server_errors: class("5xx"),
            open_connections: registry.gauge(
                "rpg_connections_open",
                "Connections currently open across all event loops.",
                &[],
            ),
            queue_depth: registry.gauge(
                "rpg_queue_depth",
                "Pipeline requests currently queued for compute, across all tenants.",
                &[],
            ),
            cache_hits: registry.counter(
                "rpg_cache_hits_total",
                "Requests answered from the result cache.",
                &[],
            ),
            cache_misses: registry.counter(
                "rpg_cache_misses_total",
                "Requests that ran the pipeline because no cached result matched.",
                &[],
            ),
            cache_entries: registry.gauge(
                "rpg_cache_entries",
                "Results currently held by the shared LRU cache.",
                &[],
            ),
            timings: Mutex::new(TimingAggregate::default()),
        }
    }
}

/// Pipeline work classified by tenant, queued for the compute pool. A
/// generate request travels in resolved form (corpus name + validated
/// parameters) so the driver-side validation is not repeated on the worker.
enum Work {
    Generate(String, ResolvedRequest),
    /// One item of a `/v1/batch` request: each item is admitted (and
    /// billed) under its own tenant, so a mixed-corpus batch consumes each
    /// tenant's budget separately and overflow turns into *per-item* `429`s
    /// inside the batch response instead of rejecting the whole batch. The
    /// ticket routes the item's result slot back to the shared assembly.
    BatchItem {
        ticket: BatchTicket,
        corpus: String,
        resolved: ResolvedRequest,
    },
    /// Rebuild one tenant's artifacts from its current corpus (the
    /// `/v1/corpora/:name/refresh` endpoint) — artifact builds are
    /// CPU-heavy, so they ride the compute queue like any pipeline run,
    /// billed to the tenant being refreshed.
    Refresh(String),
    /// Build a corpus from a wire-shipped spec and atomically swap it in
    /// under `name` (the `PUT /v1/corpora/:name` endpoint), billed to that
    /// tenant's lane.
    Put {
        name: String,
        config: Box<TenantConfig>,
    },
    /// Re-read the manifest file and apply it (the `POST /v1/admin/reload`
    /// endpoint). Corpus builds are CPU-heavy, so the whole apply rides the
    /// compute pool — the event loops never block on it.
    Reload,
}

/// The address a compute worker posts its response back to: the owning
/// event loop's inbox plus that loop's wake pipe. If a `Job` is ever
/// dropped unfulfilled, the `Drop` impl posts an error response instead,
/// so the connection can never be stranded in `ComputeInFlight`.
struct Reply {
    target: Option<(Arc<LoopShared>, usize)>,
}

impl Reply {
    fn new(to: Arc<LoopShared>, token: usize) -> Reply {
        Reply {
            target: Some((to, token)),
        }
    }

    fn send(mut self, response: Response) {
        if let Some((to, token)) = self.target.take() {
            to.push_reply(token, response);
        }
    }

    /// Disarms the reply (used when admission hands the job back): the
    /// rejection is answered inline, so nothing must be posted later.
    fn cancel(mut self) {
        self.target = None;
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let Some((to, token)) = self.target.take() {
            to.push_reply(
                token,
                Response::json(500, error_body("request was dropped")),
            );
        }
    }
}

struct Job {
    work: Work,
    /// Where the response goes. Batch-item jobs carry `None`: their shared
    /// [`BatchAssembly`] owns the one reply for the whole batch.
    reply: Option<Reply>,
    /// Set by the owning event loop when the client hangs up while this
    /// work is queued or running (a reset observed in `ComputeInFlight`):
    /// the compute worker skips the pipeline run because nobody can
    /// receive the result.
    cancelled: Arc<AtomicBool>,
    /// The queue lane this job was admitted under; a worker releases the
    /// lane's in-flight slot once the job finishes (however it finishes).
    lane: String,
    /// When admission accepted the work — the origin of the tenant's
    /// queue-to-reply latency histogram.
    admitted_at: Instant,
    /// Absolute deadline: a worker popping the job past this point sheds
    /// it with a `503` instead of computing a result nobody awaits.
    deadline: Option<Instant>,
    /// The request's trace: its ID becomes the worker's logging context
    /// while the job runs, and its recorder (when armed) receives the
    /// `queue_wait`, `compute`, and per-stage spans.
    trace: RequestTrace,
}

/// The shared result collector of one `/v1/batch` request: per-item admission
/// means the items complete independently (across compute workers, or
/// instantly at admission for rejected items), and whichever fill lands last
/// assembles the ordered `results` array and posts the batch's single reply.
struct BatchAssembly {
    slots: Mutex<Vec<Option<Value>>>,
    remaining: AtomicUsize,
    reply: Mutex<Option<Reply>>,
}

impl BatchAssembly {
    fn new(items: usize, reply: Reply) -> Arc<BatchAssembly> {
        Arc::new(BatchAssembly {
            slots: Mutex::new(vec![None; items]),
            remaining: AtomicUsize::new(items),
            reply: Mutex::new(Some(reply)),
        })
    }

    /// A ticket filling slot `index`; dropping it unfilled records an
    /// error, so a dropped job can never strand the batch.
    fn ticket(self: &Arc<BatchAssembly>, index: usize) -> BatchTicket {
        BatchTicket {
            assembly: self.clone(),
            index,
            filled: false,
        }
    }

    fn fill(&self, index: usize, value: Value) {
        {
            let mut slots = self.slots.lock().unwrap();
            debug_assert!(slots[index].is_none(), "batch slot filled twice");
            slots[index] = Some(value);
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let results: Vec<Value> = std::mem::take(&mut *self.slots.lock().unwrap())
                .into_iter()
                .map(|slot| slot.unwrap_or_else(|| item_error_value(500, "request was dropped")))
                .collect();
            if let Some(reply) = self.reply.lock().unwrap().take() {
                reply.send(json_200(&Value::Object(vec![(
                    "results".to_string(),
                    Value::Array(results),
                )])));
            }
        }
    }
}

/// One batch item's claim on its result slot.
struct BatchTicket {
    assembly: Arc<BatchAssembly>,
    index: usize,
    filled: bool,
}

impl BatchTicket {
    fn fill(mut self, value: Value) {
        self.filled = true;
        self.assembly.fill(self.index, value);
    }
}

impl Drop for BatchTicket {
    fn drop(&mut self) {
        if !self.filled {
            self.assembly
                .fill(self.index, item_error_value(500, "request was dropped"));
        }
    }
}

/// What the acceptor and the compute workers hand to an event loop.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    replies: Vec<(usize, Response)>,
}

/// One event loop's mailbox: an inbox of new connections and finished
/// compute replies, plus the self-pipe that kicks the loop out of `poll`
/// whenever either arrives.
struct LoopShared {
    wake: WakePipe,
    inbox: Mutex<Inbox>,
}

impl LoopShared {
    fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().unwrap().conns.push(stream);
        self.wake.wake();
    }

    fn push_reply(&self, token: usize, response: Response) {
        self.inbox.lock().unwrap().replies.push((token, response));
        self.wake.wake();
    }
}

struct Shared {
    registry: Arc<CorpusRegistry>,
    config: ServerConfig,
    /// Overflow connections waiting for their `503`. Writing the rejection
    /// happens off the acceptor thread so a slow overflow client cannot
    /// stall admission; this queue is bounded too — when even it is full,
    /// the connection is dropped outright.
    rejects: Bounded<TcpStream>,
    /// Parsed pipeline requests, per-tenant bounded, drained in DRR order.
    requests: FairQueue<Job>,
    /// The live key table; swapped by manifest reloads, edited by
    /// `PUT`/`DELETE`. Only consulted when `config.auth_enabled`.
    auth: RwLock<AuthTable>,
    /// Per-tenant latency histograms and shed/cancel counters, surfaced by
    /// `/v1/stats`. Entries appear lazily the first time a tenant's work
    /// reaches the compute pool.
    metrics: RwLock<HashMap<String, Arc<TenantMetrics>>>,
    /// Per-tenant deadline budgets (ms); retuned by manifest reloads and
    /// `PATCH /v1/admin/tenants`. Tenants absent here fall back to
    /// `config.default_deadline_ms`.
    deadlines: RwLock<HashMap<String, u64>>,
    /// Per-tenant slow-trace thresholds (ms); tenants absent here fall
    /// back to `config.trace_slow_ms`.
    trace_slow: RwLock<HashMap<String, u64>>,
    /// The unified metrics registry behind `GET /metrics` — every counter
    /// in [`Counters`] and every [`TenantMetrics`] handle points into it.
    obs: Arc<MetricsRegistry>,
    /// The ring of slow-request span-tree exemplars behind
    /// `GET /v1/debug/requests`.
    trace_log: Arc<TraceLog>,
    /// The event loops, indexed by the acceptor's round-robin.
    loops: Vec<Arc<LoopShared>>,
    /// The resolved readiness backend every driver runs on (reported by
    /// `/v1/stats`).
    io_backend: IoBackend,
    /// Connections admitted and not yet closed, across all loops.
    open_connections: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A running HTTP front end over a [`CorpusRegistry`].
///
/// Dropping the server shuts it down: the listener stops accepting, open
/// connections finish their in-flight exchange, and every thread is joined.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    rejector: Option<JoinHandle<()>>,
    drivers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor, event-loop, and compute
    /// threads.
    pub fn spawn(registry: Arc<CorpusRegistry>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let driver_count = config.driver_count();
        let loops = (0..driver_count)
            .map(|_| {
                Ok(Arc::new(LoopShared {
                    wake: WakePipe::new()?,
                    inbox: Mutex::new(Inbox::default()),
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        // Build every driver's poller up front so an unbuildable backend
        // (epoll forced off Linux, fd exhaustion) fails the spawn instead
        // of a driver thread.
        let pollers = (0..driver_count)
            .map(|_| sys::new_poller(config.io_backend))
            .collect::<io::Result<Vec<_>>>()?;
        let io_backend = pollers[0].backend();
        let requests = FairQueue::with_weights(
            config.queue_capacity,
            config.tenant_queue_capacity,
            config.tenant_weights.clone(),
        );
        for (tenant, bound) in &config.tenant_bounds {
            requests.set_tenant_bound(tenant, *bound);
        }
        for (tenant, cap) in &config.tenant_inflight {
            requests.set_inflight_cap(tenant, *cap);
        }
        let deadlines = config.tenant_deadlines.iter().cloned().collect();
        let trace_slow = config.tenant_trace_slow.iter().cloned().collect();
        let obs = Arc::new(MetricsRegistry::new());
        let counters = Counters::registered(&obs);
        let trace_log = Arc::new(TraceLog::new(config.trace_log_capacity));
        let shared = Arc::new(Shared {
            registry,
            rejects: Bounded::new((config.queue_capacity * 4).clamp(16, 256)),
            requests,
            auth: RwLock::new(config.auth.clone()),
            metrics: RwLock::new(HashMap::new()),
            deadlines: RwLock::new(deadlines),
            trace_slow: RwLock::new(trace_slow),
            obs,
            trace_log,
            loops,
            io_backend,
            config,
            open_connections: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters,
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rpg-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))?
        };
        let rejector = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rpg-reject".to_string())
                .spawn(move || rejector_loop(&shared))?
        };
        let drivers = pollers
            .into_iter()
            .enumerate()
            .map(|(i, poller)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rpg-loop-{i}"))
                    .spawn(move || {
                        let me = shared.loops[i].clone();
                        event_loop(&shared, &me, poller);
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rpg-worker-{i}"))
                    .spawn(move || compute_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            rejector: Some(rejector),
            drivers,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes to.
    pub fn registry(&self) -> &Arc<CorpusRegistry> {
        &self.shared.registry
    }

    /// Connections currently open across all event loops.
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Event-loop driver threads serving all connections — fixed at spawn,
    /// independent of how many connections are open.
    pub fn driver_threads(&self) -> usize {
        self.drivers.len()
    }

    /// The readiness backend the event loops resolved to at spawn.
    pub fn io_backend(&self) -> IoBackend {
        self.shared.io_backend
    }

    /// Pipeline requests currently queued for compute, across all tenants.
    pub fn request_depth(&self) -> usize {
        self.shared.requests.depth()
    }

    /// Queued requests per tenant seen so far.
    pub fn tenant_depths(&self) -> Vec<(String, usize)> {
        self.shared.requests.tenant_depths()
    }

    /// A copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        let counters = &self.shared.counters;
        let (ok, client_errors, server_errors) = (
            counters.ok.get(),
            counters.client_errors.get(),
            counters.server_errors.get(),
        );
        StatsSnapshot {
            accepted: counters.accepted.get(),
            open_connections: self.open_connections() as u64,
            rejected: counters.rejected.get(),
            throttled: counters.throttled.get(),
            handled: ok + client_errors + server_errors,
            ok,
            client_errors,
            server_errors,
            pipeline: *counters.timings.lock().unwrap(),
        }
    }

    /// Applies a validated manifest to the *running* server: the registry's
    /// tenant set is diffed (create/replace/remove with epoch bumps and
    /// exact-tenant cache eviction), fair-queue weights and bounds are
    /// retuned, removed tenants' queue lanes retire once drained, and the
    /// key table is swapped — all without dropping a connection. This is
    /// what `SIGHUP` and `POST /v1/admin/reload` ride on.
    ///
    /// Corpus builds happen on the calling thread; call it from a worker
    /// or the CLI's supervisor loop, not from an event loop.
    pub fn apply_manifest(&self, manifest: &Manifest) -> Result<ManifestDiff, String> {
        apply_manifest_to(&self.shared, manifest)
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Event loops drain before the compute pool closes: a connection in
        // `ComputeInFlight` exits its loop only once a live compute worker
        // has posted its reply.
        for loop_shared in &self.shared.loops {
            loop_shared.wake.wake();
        }
        for driver in self.drivers.drain(..) {
            let _ = driver.join();
        }
        self.shared.requests.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.rejects.close();
        if let Some(rejector) = self.rejector.take() {
            let _ = rejector.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    // Round-robin target; the acceptor is single-threaded, so a local
    // counter suffices.
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                shared.counters.accepted.inc();
                if shared.open_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.counters.rejected.inc();
                    // Hand the 503 to the rejector thread; if even the
                    // reject queue is full, drop the connection — admission
                    // never blocks and never buffers unboundedly.
                    let _ = shared.rejects.try_push(stream);
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::SeqCst);
                let target = &shared.loops[next % shared.loops.len()];
                next = next.wrapping_add(1);
                target.push_conn(stream);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure. Some of these (EMFILE) persist
                // until another thread frees a descriptor — back off briefly
                // instead of busy-spinning the acceptor at 100% CPU.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Answers the connections the acceptor would not admit.
///
/// Beyond the trace-ID sniff the request bytes are never read, so closing
/// immediately after the write would leave unread data in the receive
/// buffer — on close that triggers a TCP RST, which can destroy the `503`
/// before the client reads it. Hence the bounded drain after the write,
/// done here on a dedicated thread so the acceptor never blocks.
fn rejector_loop(shared: &Shared) {
    while let Some(stream) = shared.rejects.pop() {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
        // Even an overflow 503 carries a trace ID the client can quote: a
        // short bounded read of whatever request bytes have already arrived
        // recovers the caller's `x-rpg-trace-id` when it sent one (the
        // header is near the head start, so one early chunk usually holds
        // it); otherwise the response echoes a freshly minted ID.
        let trace_id = sniff_trace_id(&stream).unwrap_or_else(TraceId::mint);
        let response = Response::json(503, error_body("server is at capacity, retry shortly"))
            .with_header("retry-after", shared.config.retry_after_secs.to_string())
            .with_header("x-rpg-trace-id", trace_id.to_string());
        let _ = response.write_to(&mut &stream, false);
        // Half-close: the FIN lets the client finish reading the response
        // immediately; the drain then consumes its unread request bytes so
        // the final close doesn't RST.
        let _ = stream.shutdown(Shutdown::Write);
        drain_bounded(&stream);
    }
}

fn drain_bounded(stream: &TcpStream) {
    // Both a byte cap and a wall-clock deadline: without the deadline, a
    // client trickling one byte per (sub-timeout) interval could pin this
    // thread for as long as the byte cap lasts.
    let deadline = Instant::now() + Duration::from_secs(2);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut chunk = [0u8; 16 * 1024];
    let mut drained = 0usize;
    let mut stream = stream;
    while drained < DRAIN_BYTE_CAP && Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Reads whatever head bytes the overflow client has already sent (one
/// bounded, short-deadline read — the rejector must never be pinned by a
/// slow sender) and scans them for an `x-rpg-trace-id` header, so even a
/// rejector-thread `503` echoes the caller's trace ID.
fn sniff_trace_id(stream: &TcpStream) -> Option<TraceId> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut head = [0u8; 4096];
    let n = (&mut &*stream).read(&mut head).ok().filter(|&n| n > 0)?;
    extract_trace_header(&head[..n])
}

/// Finds the value of an `x-rpg-trace-id` header inside raw head bytes
/// (case-insensitive name, as HTTP requires), returning it only when it
/// parses as a valid trace ID.
fn extract_trace_header(head: &[u8]) -> Option<TraceId> {
    const NAME: &[u8] = b"x-rpg-trace-id:";
    for line in head.split(|&b| b == b'\n') {
        if line.len() < NAME.len() || !line[..NAME.len()].eq_ignore_ascii_case(NAME) {
            continue;
        }
        let value = std::str::from_utf8(&line[NAME.len()..]).ok()?;
        return TraceId::parse(value.trim_matches(|c: char| c.is_ascii_whitespace()));
    }
    None
}

/// How many bytes a closing connection will read-and-discard so the final
/// close does not RST a response still in flight.
const DRAIN_BYTE_CAP: usize = 1024 * 1024;

/// How long a closing connection stays in `Draining` waiting for the
/// peer's FIN before giving up.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// The per-connection state machine phase (see the module docs for the
/// transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Between requests on a persistent connection; the idle deadline runs.
    Idle,
    /// The first bytes of a request arrived; the head terminator has not.
    ReadingHead,
    /// The head parsed cleanly; the `Content-Length` body is still short.
    ReadingBody,
    /// A request was admitted to the compute queue; the connection holds
    /// no poll interest and waits for the worker's reply via the wake
    /// pipe.
    ComputeInFlight,
    /// A response is being written; `POLLOUT` drives progress.
    Writing,
    /// The final response is written and the write side half-closed; reads
    /// are discarded until FIN so the close cannot RST the response.
    Draining,
}

/// Whether a connection survives the event that was just processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Keep,
    Close,
}

struct Connection {
    stream: TcpStream,
    parse: RequestBuffer,
    phase: Phase,
    /// The phase's deadline (`None` only in `ComputeInFlight`); the loop's
    /// poll timeout is the minimum over these.
    deadline: Option<Instant>,
    /// Requests parsed on this connection, against the per-connection
    /// budget.
    served: usize,
    /// Interim bytes (`100 Continue`) queued ahead of the response, with
    /// their write cursor. Responses themselves never land here — they
    /// stream through `emitter`.
    out: Vec<u8>,
    out_pos: usize,
    /// The response currently being emitted in bounded chunks; a partial
    /// write resumes mid-chunk on the next `POLLOUT`.
    emitter: Option<ResponseEmitter>,
    /// The interest mask currently installed in the poller (`None` = not
    /// registered). Compared against [`Connection::interest`] so only an
    /// actual change costs a syscall.
    registered: Option<i16>,
    /// The keep-alive decision made when the current request was parsed;
    /// applied once its response fully drains.
    keep_alive_after: bool,
    /// Bytes discarded so far in `Draining`.
    drained: usize,
    /// Set when a hangup in `ComputeInFlight` probes as a true reset: the
    /// client is gone, so the pending reply is dropped (and the slot
    /// closed) when it arrives instead of attempting a doomed write.
    abandoned: bool,
    /// Set when a hangup in `ComputeInFlight` probes as a *graceful* FIN
    /// (`shutdown(SHUT_WR)` client, still reading): the response is still
    /// owed and deliverable, so the connection merely stops hangup-watching
    /// — the level-triggered FIN would otherwise re-report every tick.
    half_closed: bool,
    /// Cancellation flag shared with the compute job(s) of the in-flight
    /// request; flipped when the client hangs up so queued work is skipped
    /// before it runs.
    cancel: Option<Arc<AtomicBool>>,
    /// The in-flight request's trace: set when its head finishes parsing,
    /// stamped onto the response as `x-rpg-trace-id`, and consumed when
    /// the response fully drains (where the request may be retained as a
    /// slow-trace exemplar).
    trace: Option<ConnTrace>,
}

/// The driver-side view of one request's trace.
struct ConnTrace {
    /// Client-supplied (`x-rpg-trace-id`) or freshly minted.
    id: TraceId,
    /// When the request head finished parsing — the span epoch, and the
    /// origin of the exemplar's wall-clock latency.
    started: Instant,
    /// When the response started writing (stamps the `response_write`
    /// span).
    write_started: Instant,
    /// The response status, captured when the response is staged.
    status: u16,
    /// The billing tenant, once admission resolved one.
    tenant: Option<String>,
    /// The span sink shared with the compute worker. `None` when the
    /// trace ring is disabled (`trace_log_capacity == 0`) — IDs still
    /// flow, spans are not recorded.
    recorder: Option<SharedRecorder>,
}

impl ConnTrace {
    fn new(id: TraceId, now: Instant, record_spans: bool) -> ConnTrace {
        ConnTrace {
            id,
            started: now,
            write_started: now,
            status: 0,
            tenant: None,
            recorder: record_spans.then(|| Arc::new(Mutex::new(SpanRecorder::with_epoch(now)))),
        }
    }
}

impl Connection {
    fn new(stream: TcpStream, now: Instant, idle_timeout: Duration) -> Connection {
        Connection {
            stream,
            parse: RequestBuffer::new(),
            phase: Phase::Idle,
            deadline: Some(now + idle_timeout),
            served: 0,
            out: Vec::new(),
            out_pos: 0,
            emitter: None,
            registered: None,
            keep_alive_after: false,
            drained: 0,
            abandoned: false,
            half_closed: false,
            cancel: None,
            trace: None,
        }
    }

    /// Whether interim bytes are still queued (the reading phases add
    /// `POLLOUT` interest for these).
    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Unwritten bytes across the interim buffer and the staged response —
    /// the `Writing` deadline refreshes only while this shrinks.
    fn out_remaining(&self) -> usize {
        (self.out.len() - self.out_pos)
            + self.emitter.as_ref().map_or(0, ResponseEmitter::remaining)
    }

    /// The poll interest for the current phase; `None` keeps the
    /// connection out of the poll set entirely.
    fn interest(&self) -> Option<i16> {
        match self.phase {
            Phase::Idle | Phase::ReadingHead | Phase::ReadingBody => {
                // Reading phases may still owe the client an interim
                // `100 Continue` that did not fit the socket buffer.
                let events = if self.out_pending() {
                    POLLIN | POLLOUT
                } else {
                    POLLIN
                };
                Some(events)
            }
            Phase::Writing => Some(POLLOUT),
            Phase::Draining => Some(POLLIN),
            // Awaiting compute, the connection wants no I/O — but the
            // entry still reports `POLLHUP`/`POLLERR`, and `POLLRDHUP` is
            // requested so a graceful FIN is visible too. A hangup is then
            // *probed* (`sys::peek_peer`): a true reset cancels the queued
            // work, while a `shutdown(SHUT_WR)` client still gets its
            // reply. Either way the fd then leaves the set (both signals
            // are level-triggered and would re-report every tick).
            Phase::ComputeInFlight => (!self.abandoned && !self.half_closed).then_some(POLLRDHUP),
        }
    }

    /// Writes as much pending output as the socket accepts — interim
    /// bytes first, then the staged response chunk by chunk. `Ok(true)`
    /// means everything (including the emitter) fully drained. On
    /// `WouldBlock` the emitter's cursor holds the resume point, so no
    /// bytes are ever re-serialised.
    fn flush_out(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        // Only interim `100 Continue`s pass through `out` now, so the
        // buffer stays tiny; clearing keeps the capacity for reuse.
        self.out.clear();
        self.out_pos = 0;
        while let Some(emitter) = self.emitter.as_mut() {
            let Some(chunk) = emitter.next_chunk() else {
                self.emitter = None;
                break;
            };
            match (&self.stream).write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => emitter.advance(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Stages a response for emission behind any pending interim bytes and
    /// enters `Writing` (the caller's `advance` drives the flush). The
    /// response is consumed: its body becomes the emitter's, unserialised.
    ///
    /// This is the one place the `x-rpg-trace-id` header attaches, so
    /// every response — success, 4xx, 5xx, even connection-level errors
    /// that never had a parsed request (which get a minted ID here) —
    /// carries one.
    fn start_response(
        &mut self,
        response: Response,
        keep_alive: bool,
        now: Instant,
        shared: &Shared,
    ) {
        let trace = self
            .trace
            .get_or_insert_with(|| ConnTrace::new(TraceId::mint(), now, false));
        trace.status = response.status;
        trace.write_started = now;
        let response = response.with_header("x-rpg-trace-id", trace.id.to_string());
        self.emitter = Some(ResponseEmitter::new(response, keep_alive));
        self.keep_alive_after = keep_alive;
        self.phase = Phase::Writing;
        self.deadline = Some(now + shared.config.read_timeout);
    }
}

/// The wake pipe's token in the poller — never a valid slot index (slots
/// are bounded by `max_connections`).
const WAKE_TOKEN: usize = usize::MAX;

fn event_loop(shared: &Shared, me: &Arc<LoopShared>, mut poller: Box<dyn Poller>) {
    let mut slots: Vec<Option<Connection>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let poller = poller.as_mut();
    // The one permanent registration; everything else enters and leaves
    // the interest set with its connection.
    poller
        .register(me.wake.read_fd(), WAKE_TOKEN, POLLIN)
        .expect("a fresh poller accepts the wake pipe");
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        // 1. Harvest the inbox: new connections and finished compute
        // replies.
        let (new_conns, replies) = {
            let mut inbox = me.inbox.lock().unwrap();
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.replies),
            )
        };
        let now = Instant::now();
        for stream in new_conns {
            if shutting_down {
                shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            register(&mut slots, poller, stream, now, shared);
        }
        for (token, response) in replies {
            if let Some(conn) = slots.get_mut(token).and_then(Option::as_mut) {
                conn.cancel = None;
                if conn.abandoned {
                    // The client hung up mid-compute; the reply has nowhere
                    // to go — drop it and free the slot (which stayed
                    // reserved so the reply could not be misdelivered to a
                    // successor connection).
                    close_slot(&mut slots, poller, token, shared);
                    continue;
                }
                // Honour the keep-alive decision made at parse time, unless
                // the server started draining in the meantime.
                let keep_alive = conn.keep_alive_after && !shutting_down;
                record_response(shared, response.status);
                conn.start_response(response, keep_alive, now, shared);
                if advance(conn, shared, me, token, now) == Flow::Close {
                    close_slot(&mut slots, poller, token, shared);
                } else {
                    sync_interest(&mut slots, poller, token, shared);
                }
            }
        }
        // 2. On shutdown, connections with no response in flight close
        // immediately; `ComputeInFlight` and `Writing` finish their
        // exchange, `Draining` finishes its bounded drain.
        if shutting_down {
            for token in 0..slots.len() {
                let closable = matches!(
                    slots[token].as_ref().map(|c| c.phase),
                    Some(Phase::Idle | Phase::ReadingHead | Phase::ReadingBody)
                );
                if closable {
                    close_slot(&mut slots, poller, token, shared);
                }
            }
            if slots.iter().all(Option::is_none) {
                return;
            }
        }
        // 3. The earliest deadline still comes from a userspace scan — the
        // cheap O(n) walk; what the incremental interest set removed is
        // the O(n) *kernel* hand-off per tick.
        let mut next_deadline: Option<Instant> = None;
        for slot in &slots {
            if let Some(deadline) = slot.as_ref().and_then(|conn| conn.deadline) {
                next_deadline =
                    Some(next_deadline.map_or(deadline, |current| current.min(deadline)));
            }
        }
        // 4. Sleep until the earliest deadline, capped defensively so a
        // lost wake can never park the loop for long.
        let now = Instant::now();
        let timeout = next_deadline
            .map(|deadline| deadline.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(500))
            .min(Duration::from_millis(500));
        if poller.wait(&mut events, Some(timeout)).is_err() {
            // EINVAL et al. are programming errors; treated as a timeout
            // tick so the loop stays alive (deadlines still fire).
            std::thread::sleep(Duration::from_millis(1));
        }
        // 5. Dispatch readiness by token.
        let now = Instant::now();
        for &event in &events {
            if event.token == WAKE_TOKEN {
                // Fully drained, so the next wake byte is a fresh edge.
                me.wake.drain();
                continue;
            }
            let token = event.token;
            let Some(conn) = slots.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if conn.phase == Phase::ComputeInFlight {
                // The slot must outlive the pending reply (closing it would
                // let a successor connection receive this one's response),
                // so a hangup only *marks* the connection; the reply's
                // arrival frees the slot. The hangup bits alone cannot
                // distinguish a client that `shutdown(SHUT_WR)`'d and still
                // awaits its response from one whose connection reset — the
                // probe does: only a true reset cancels the queued work.
                if event.has(POLLHUP | POLLRDHUP | POLLERR | POLLNVAL) {
                    match sys::peek_peer(conn.stream.as_raw_fd()) {
                        sys::PeerProbe::Reset => {
                            conn.abandoned = true;
                            if let Some(cancel) = &conn.cancel {
                                cancel.store(true, Ordering::SeqCst);
                            }
                        }
                        // A graceful FIN (possibly behind pipelined bytes):
                        // the reply is still owed and deliverable.
                        sys::PeerProbe::Eof | sys::PeerProbe::Data => conn.half_closed = true,
                        sys::PeerProbe::Pending => {}
                    }
                }
                // Either verdict drops the hangup watch (under poll the
                // level-triggered FIN would re-report every tick).
                sync_interest(&mut slots, poller, token, shared);
                continue;
            }
            if event.has(POLLERR | POLLNVAL) {
                close_slot(&mut slots, poller, token, shared);
                continue;
            }
            if event.has(POLLIN | POLLOUT | POLLHUP | POLLRDHUP) {
                if handle_ready(conn, event, poller.edge_triggered(), shared, me, token, now)
                    == Flow::Close
                {
                    close_slot(&mut slots, poller, token, shared);
                } else {
                    sync_interest(&mut slots, poller, token, shared);
                }
            }
        }
        // 6. Enforce deadlines.
        let now = Instant::now();
        for token in 0..slots.len() {
            let expired = slots[token]
                .as_ref()
                .is_some_and(|conn| conn.deadline.is_some_and(|deadline| deadline <= now));
            if !expired {
                continue;
            }
            let conn = slots[token].as_mut().expect("expired slot is live");
            if expire(conn, shared, me, token, now) == Flow::Close {
                close_slot(&mut slots, poller, token, shared);
            } else {
                sync_interest(&mut slots, poller, token, shared);
            }
        }
    }
}

/// Reconciles a connection's installed interest with what its phase wants,
/// spending a syscall only on an actual change. This is also the
/// edge-triggered re-arm point: `modify` reports conditions that are
/// *already* true on the next wait, so calling this after every state
/// transition is what makes interest-on-transition safe under `EPOLLET` —
/// a response finishing while the socket was writable all along, or
/// pipelined bytes buffered behind a phase change, still surface.
fn sync_interest(
    slots: &mut [Option<Connection>],
    poller: &mut dyn Poller,
    token: usize,
    shared: &Shared,
) {
    let Some(conn) = slots[token].as_mut() else {
        return;
    };
    let desired = conn.interest();
    if conn.registered == desired {
        return;
    }
    let fd = conn.stream.as_raw_fd();
    let outcome = match (conn.registered, desired) {
        (None, Some(interest)) => poller.register(fd, token, interest),
        (Some(_), None) => poller.deregister(fd, token),
        (Some(_), Some(interest)) => poller.modify(fd, token, interest),
        (None, None) => Ok(()),
    };
    match outcome {
        Ok(()) => conn.registered = desired,
        Err(_) => {
            // An fd the kernel refuses to track cannot be served; the
            // failed transition also voids whatever registration it had.
            conn.registered = None;
            close_slot(slots, poller, token, shared);
        }
    }
}

fn register(
    slots: &mut Vec<Option<Connection>>,
    poller: &mut dyn Poller,
    stream: TcpStream,
    now: Instant,
    shared: &Shared,
) {
    if stream.set_nonblocking(true).is_err() {
        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    // Responses are small and latency-bound: never let Nagle hold one back
    // waiting for a delayed ACK on a persistent connection.
    let _ = stream.set_nodelay(true);
    let conn = Connection::new(stream, now, shared.config.idle_timeout);
    let token = match slots.iter().position(Option::is_none) {
        Some(at) => {
            slots[at] = Some(conn);
            at
        }
        None => {
            slots.push(Some(conn));
            slots.len() - 1
        }
    };
    // Enters the poll set once here; from now on only state transitions
    // touch it.
    sync_interest(slots, poller, token, shared);
}

fn close_slot(
    slots: &mut [Option<Connection>],
    poller: &mut dyn Poller,
    token: usize,
    shared: &Shared,
) {
    if let Some(conn) = slots[token].take() {
        if conn.registered.is_some() {
            // Deregister before the fd drops: the kernel removes epoll
            // entries with the last close anyway, but the poll backend
            // keys on the raw fd number, which the next accept may reuse.
            let _ = poller.deregister(conn.stream.as_raw_fd(), token);
        }
        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Feeds one readiness event into a connection and advances its state
/// machine as far as the buffered bytes allow.
fn handle_ready(
    conn: &mut Connection,
    event: Event,
    edge_triggered: bool,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    now: Instant,
) -> Flow {
    if event.has(POLLIN | POLLHUP | POLLRDHUP)
        && matches!(
            conn.phase,
            Phase::Idle | Phase::ReadingHead | Phase::ReadingBody
        )
    {
        loop {
            // Consume what the kernel has buffered in bursts of 16 chunks,
            // parsing between bursts so a huge body is bounded by the
            // request limits, not by how fast the client can send. Under
            // level-triggered poll one burst per tick suffices (leftovers
            // re-report); an edge-triggered backend must drain to
            // `WouldBlock` before waiting again, hence the outer loop.
            let mut peer_eof = false;
            let mut drained_dry = false;
            for _ in 0..16 {
                match conn.parse.read_from(&mut &conn.stream) {
                    Ok(0) => {
                        peer_eof = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        drained_dry = true;
                        break;
                    }
                    Err(_) => return Flow::Close,
                }
            }
            if peer_eof {
                // The peer's data and FIN may land in the same readiness
                // batch (write-then-shutdown is a legal client pattern), so
                // any fully buffered requests are served *first*; only what
                // remains after parsing counts as truncation.
                let flow = advance(conn, shared, me, token, now);
                if flow == Flow::Close
                    || !matches!(
                        conn.phase,
                        Phase::Idle | Phase::ReadingHead | Phase::ReadingBody
                    )
                {
                    // A response is in flight (or the connection is
                    // closing); the EOF is re-observed once that phase's
                    // transition re-arms readability.
                    return flow;
                }
                if conn.phase == Phase::Idle && !conn.parse.has_buffered() {
                    // Clean goodbye between requests.
                    return Flow::Close;
                }
                // A partial request was truncated mid-stream: tell the peer
                // why before closing — it may have half-closed and still be
                // reading (matching the blocking parser's `Incomplete`).
                let e = http::HttpError::Incomplete;
                let response = Response::json(e.status(), error_body(&e.message()));
                record_response(shared, response.status);
                conn.start_response(response, false, now, shared);
                break;
            }
            if advance(conn, shared, me, token, now) == Flow::Close {
                return Flow::Close;
            }
            if !edge_triggered || drained_dry {
                break;
            }
            if !matches!(
                conn.phase,
                Phase::Idle | Phase::ReadingHead | Phase::ReadingBody
            ) {
                // A response or compute is now in flight; whatever is still
                // unread surfaces when the phase transition back to reading
                // re-arms `POLLIN`.
                break;
            }
        }
    }
    advance(conn, shared, me, token, now)
}

/// Runs the state machine until it needs more I/O readiness, more compute,
/// or decides to close. This is the only place phases transition.
fn advance(
    conn: &mut Connection,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    now: Instant,
) -> Flow {
    loop {
        match conn.phase {
            Phase::Idle | Phase::ReadingHead | Phase::ReadingBody => {
                // An interim `100 Continue` may still be queued; push it
                // while the socket allows.
                if conn.out_pending() && conn.flush_out().is_err() {
                    return Flow::Close;
                }
                let mut wants_continue = false;
                match conn
                    .parse
                    .try_parse(&shared.config.limits, || wants_continue = true)
                {
                    Ok(Parse::Complete(request)) => {
                        if wants_continue {
                            conn.out.extend_from_slice(http::CONTINUE);
                        }
                        if handle_request(conn, &request, shared, me, token, now) == Flow::Close {
                            return Flow::Close;
                        }
                        // `ComputeInFlight` waits for the worker; `Writing`
                        // loops back in to flush.
                        if conn.phase == Phase::ComputeInFlight {
                            return Flow::Keep;
                        }
                    }
                    Ok(Parse::NeedHead) => {
                        if conn.phase == Phase::Idle && conn.parse.has_buffered() {
                            // First bytes of a new request: the per-request
                            // read deadline starts now.
                            conn.phase = Phase::ReadingHead;
                            conn.deadline = Some(now + shared.config.read_timeout);
                        }
                        return Flow::Keep;
                    }
                    Ok(Parse::NeedBody) => {
                        if wants_continue {
                            conn.out.extend_from_slice(http::CONTINUE);
                            if conn.flush_out().is_err() {
                                return Flow::Close;
                            }
                        }
                        if conn.phase == Phase::Idle {
                            // Head arrived in one gulp off an idle socket.
                            conn.deadline = Some(now + shared.config.read_timeout);
                        }
                        conn.phase = Phase::ReadingBody;
                        return Flow::Keep;
                    }
                    Err(e) => {
                        // Framing is lost after a parse error, so the
                        // connection always closes — which is also what
                        // keeps the conformance rejections (`501`
                        // Transfer-Encoding, duplicate Content-Length
                        // `400`) smuggling-proof.
                        let response = Response::json(e.status(), error_body(&e.message()));
                        record_response(shared, response.status);
                        conn.start_response(response, false, now, shared);
                    }
                }
            }
            Phase::Writing => {
                let progress_mark = conn.out_remaining();
                match conn.flush_out() {
                    Err(_) => return Flow::Close,
                    Ok(false) => {
                        // The deadline is progress-based, like the old
                        // per-write socket timeout: a slow-but-moving
                        // reader of a large response gets a fresh window
                        // with every accepted chunk, while a fully stalled
                        // one is still cut off after `read_timeout`.
                        if conn.out_remaining() < progress_mark {
                            conn.deadline = Some(now + shared.config.read_timeout);
                        }
                        return Flow::Keep;
                    }
                    Ok(true) => {
                        finish_trace(conn, shared, now);
                        if conn.keep_alive_after && !shared.shutdown.load(Ordering::SeqCst) {
                            conn.phase = Phase::Idle;
                            conn.deadline = Some(now + shared.config.idle_timeout);
                            // Pipelined bytes already buffered parse
                            // without waiting for the socket: loop
                            // straight back in.
                        } else {
                            // Half-close, then discard whatever the client
                            // still sends: closing with unread bytes in
                            // the kernel buffer triggers an RST that can
                            // destroy the final response in flight.
                            let _ = conn.stream.shutdown(Shutdown::Write);
                            conn.phase = Phase::Draining;
                            conn.deadline = Some(now + DRAIN_DEADLINE);
                            conn.drained = 0;
                            return Flow::Keep;
                        }
                    }
                }
            }
            Phase::Draining => {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match (&conn.stream).read(&mut chunk) {
                        Ok(0) => return Flow::Close,
                        Ok(n) => {
                            conn.drained += n;
                            if conn.drained >= DRAIN_BYTE_CAP {
                                return Flow::Close;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flow::Keep,
                        Err(_) => return Flow::Close,
                    }
                }
            }
            Phase::ComputeInFlight => return Flow::Keep,
        }
    }
}

/// Handles a phase deadline firing.
fn expire(
    conn: &mut Connection,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    now: Instant,
) -> Flow {
    match conn.phase {
        // An idle keep-alive connection that outlived its welcome closes
        // silently, exactly like the blocking driver's idle wait did.
        Phase::Idle => Flow::Close,
        // Mid-request the client gets told why before the close: the whole
        // request must arrive within the read deadline, however slowly it
        // trickles.
        Phase::ReadingHead | Phase::ReadingBody => {
            let e = http::HttpError::Timeout;
            let response = Response::json(e.status(), error_body(&e.message()));
            record_response(shared, response.status);
            conn.start_response(response, false, now, shared);
            advance(conn, shared, me, token, now)
        }
        // A peer too slow to take its response (or its FIN) forfeits the
        // courtesy drain.
        Phase::Writing | Phase::Draining => Flow::Close,
        Phase::ComputeInFlight => Flow::Keep,
    }
}

fn record_response(shared: &Shared, status: u16) {
    let counters = &shared.counters;
    match status {
        200..=299 => counters.ok.inc(),
        400..=499 => counters.client_errors.inc(),
        _ => counters.server_errors.inc(),
    };
}

/// Completes a request's trace once its response fully drained: stamps the
/// `response_write` span and, when the request was slow enough for its
/// tenant's threshold, retains it as an exemplar in the trace ring.
fn finish_trace(conn: &mut Connection, shared: &Shared, now: Instant) {
    let Some(trace) = conn.trace.take() else {
        return;
    };
    let Some(recorder) = trace.recorder else {
        return;
    };
    let latency = now.saturating_duration_since(trace.started);
    let spans = match recorder.lock() {
        Ok(mut rec) => {
            rec.record_between(None, "response_write", trace.write_started, now);
            rec.spans().to_vec()
        }
        Err(_) => return,
    };
    let threshold_ms = trace
        .tenant
        .as_deref()
        .and_then(|tenant| shared.trace_slow.read().unwrap().get(tenant).copied())
        .unwrap_or(shared.config.trace_slow_ms);
    if latency < Duration::from_millis(threshold_ms) {
        return;
    }
    shared.trace_log.push(TraceRecord {
        id: trace.id,
        tenant: trace.tenant,
        status: trace.status,
        latency,
        unix_ms: unix_ms_now(),
        spans,
    });
}

/// Parses one request's routing outcome: answered inline on the loop, or
/// admitted to the compute queue with the reply addressed back here.
fn handle_request(
    conn: &mut Connection,
    request: &Request,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    now: Instant,
) -> Flow {
    conn.served += 1;
    let config = &shared.config;
    let keep_alive = config.keep_alive
        && request.keep_alive
        && conn.served < config.max_requests_per_connection.max(1)
        && !shared.shutdown.load(Ordering::SeqCst);
    conn.keep_alive_after = keep_alive;
    // Resolve the request's trace identity first: accepted from a valid
    // `x-rpg-trace-id` header, minted otherwise — so even the rejection
    // paths below echo an ID. A malformed header is a 400 (silently
    // re-minting would break the caller's correlation, the one thing the
    // header exists for).
    let trace = match header_trace_id(request) {
        Ok(id) => RequestTrace {
            id: id.unwrap_or_else(TraceId::mint),
            recorder: None,
        },
        Err(response) => {
            conn.trace = Some(ConnTrace::new(TraceId::mint(), now, false));
            record_response(shared, response.status);
            conn.start_response(response, keep_alive, now, shared);
            return Flow::Keep;
        }
    };
    let mut conn_trace = ConnTrace::new(trace.id, now, shared.config.trace_log_capacity > 0);
    let trace = RequestTrace {
        id: trace.id,
        recorder: conn_trace.recorder.clone(),
    };
    // One cancellation flag per queued exchange, shared with every compute
    // job the request spawns: a mid-compute hangup flips it so the work is
    // skipped before it runs.
    let cancel = Arc::new(AtomicBool::new(false));
    // A panic inside a handler must never take the event loop down with
    // it — compute workers guard their side; this guards the loop's inline
    // routes.
    let routed = catch_unwind(AssertUnwindSafe(|| {
        route(request, shared, me, token, &cancel, &trace)
    }))
    .unwrap_or_else(|_| Routed::Inline(Response::json(500, error_body("internal error"))));
    match routed {
        Routed::Inline(response) => {
            conn.trace = Some(conn_trace);
            record_response(shared, response.status);
            conn.start_response(response, keep_alive, now, shared);
            Flow::Keep
        }
        Routed::Queued(tenant) => {
            conn_trace.tenant = tenant;
            conn.trace = Some(conn_trace);
            // Push any pending interim `100 Continue` now: the connection
            // holds no write interest while compute runs, and the client
            // deserves the interim response before the wait, not bundled
            // with the final one. A write failure here is the hangup case —
            // `POLLHUP`/`POLLERR` watching picks it up next tick.
            if conn.out_pending() {
                let _ = conn.flush_out();
            }
            conn.phase = Phase::ComputeInFlight;
            conn.deadline = None;
            conn.abandoned = false;
            conn.half_closed = false;
            conn.cancel = Some(cancel);
            Flow::Keep
        }
    }
}

/// Where a request went after routing.
enum Routed {
    /// Answered on the event loop without touching the compute pool.
    Inline(Response),
    /// Admitted to the fair queue under the named billing tenant (`None`
    /// for mixed-tenant batches); a compute worker will post the reply.
    Queued(Option<String>),
}

/// The worker-side slice of one request's trace, riding its [`Job`]s: the
/// ID (entered as the thread-local logging context while the job runs)
/// and the span sink shared with the owning connection.
#[derive(Clone)]
struct RequestTrace {
    id: TraceId,
    recorder: Option<SharedRecorder>,
}

/// Parses the client's `x-rpg-trace-id` header: `Ok(None)` when absent,
/// `Ok(Some(id))` for a well-formed ID. Anything else — wrong length,
/// non-hex, the reserved all-zero ID — is a `400` naming the header,
/// because silently substituting a minted ID would defeat the correlation
/// the caller asked for.
fn header_trace_id(request: &Request) -> Result<Option<TraceId>, Response> {
    let Some(raw) = request.header("x-rpg-trace-id") else {
        return Ok(None);
    };
    match TraceId::parse(raw.trim()) {
        Some(id) => Ok(Some(id)),
        None => Err(Response::json(
            400,
            error_body(&format!(
                "invalid x-rpg-trace-id {raw:?}: expected exactly 32 hex \
                 characters (and not all zero)"
            )),
        )),
    }
}

/// The authenticated identity of one request, or `None` when the server
/// runs with auth off (legacy self-declared tenancy).
fn authenticate(request: &Request, shared: &Shared) -> Option<Principal> {
    if !shared.config.auth_enabled {
        return None;
    }
    let bearer = bearer_token(request.header("authorization"));
    Some(shared.auth.read().unwrap().principal(bearer))
}

/// The `401` for requests that present no (valid) key while auth is on.
fn unauthorized() -> Response {
    Response::json(401, error_body("missing or invalid bearer key"))
        .with_header("www-authenticate", "Bearer")
}

/// Rejects non-admin principals: `401` for anonymous callers, `403` for
/// tenant keys (authenticated, but not entitled to the control plane).
/// `None` means the caller may proceed.
fn require_admin(principal: &Option<Principal>) -> Option<Response> {
    match principal {
        None | Some(Principal::Admin) => None,
        Some(Principal::Anonymous) => Some(unauthorized()),
        Some(Principal::Tenant(_)) => Some(Response::json(
            403,
            error_body("admin key required for this endpoint"),
        )),
    }
}

/// Rejects anonymous callers; any tenant or admin key passes. `None` means
/// the caller may proceed.
fn require_key(principal: &Option<Principal>) -> Option<Response> {
    match principal {
        Some(Principal::Anonymous) => Some(unauthorized()),
        _ => None,
    }
}

/// Routes one request: cheap endpoints inline on the loop, pipeline work
/// through the per-tenant fair queue. `cancel` rides along on queued work
/// so a client hangup can void it before it runs.
fn route(
    request: &Request,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    let principal = authenticate(request, shared);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/generate") => {
            admit_generate(request, &principal, shared, me, token, cancel, trace)
        }
        ("POST", "/v1/batch") => admit_batch(request, &principal, shared, me, token, cancel, trace),
        ("GET", "/v1/healthz") => Routed::Inline(handle_healthz(shared)),
        ("GET", "/v1/stats") => Routed::Inline(handle_stats(shared)),
        ("GET", "/metrics") => Routed::Inline(handle_metrics(shared)),
        ("GET", "/v1/debug/requests") => Routed::Inline(
            require_admin(&principal).unwrap_or_else(|| handle_debug_requests(shared)),
        ),
        ("GET", "/v1/corpora") => Routed::Inline(
            require_key(&principal).unwrap_or_else(|| handle_corpora_list(shared, &principal)),
        ),
        ("POST", "/v1/admin/reload") => match require_admin(&principal) {
            Some(rejection) => Routed::Inline(rejection),
            None => admit_reload(request, shared, me, token, cancel, trace),
        },
        (method, path) => {
            if let Some(tenant) = admin_tenant_target(path) {
                return Routed::Inline(if method == "PATCH" {
                    require_admin(&principal)
                        .unwrap_or_else(|| handle_tenant_patch(tenant, &request.body, shared))
                } else {
                    Response::json(405, error_body("method not allowed"))
                        .with_header("allow", "PATCH")
                });
            }
            if let Some(tenant) = refresh_target(path) {
                return match require_admin(&principal) {
                    Some(rejection) => Routed::Inline(rejection),
                    None if method == "POST" => {
                        admit_refresh(tenant, request, shared, me, token, cancel, trace)
                    }
                    None => Routed::Inline(
                        Response::json(405, error_body("method not allowed"))
                            .with_header("allow", "POST"),
                    ),
                };
            }
            if let Some(tenant) = snapshot_target(path) {
                return Routed::Inline(match require_admin(&principal) {
                    Some(rejection) => rejection,
                    None if method == "GET" => handle_snapshot_export(tenant, shared),
                    None => Response::json(405, error_body("method not allowed"))
                        .with_header("allow", "GET"),
                });
            }
            if let Some(tenant) = corpus_target(path) {
                return match method {
                    "PUT" => match require_admin(&principal) {
                        Some(rejection) => Routed::Inline(rejection),
                        None => admit_put(tenant, request, shared, me, token, cancel, trace),
                    },
                    "DELETE" => Routed::Inline(
                        require_admin(&principal)
                            .unwrap_or_else(|| handle_corpus_delete(tenant, shared)),
                    ),
                    _ => Routed::Inline(
                        Response::json(405, error_body("method not allowed"))
                            .with_header("allow", "PUT, DELETE"),
                    ),
                };
            }
            Routed::Inline(match (method, path) {
                (_, "/v1/generate") | (_, "/v1/batch") | (_, "/v1/admin/reload") => {
                    Response::json(405, error_body("method not allowed"))
                        .with_header("allow", "POST")
                }
                (_, "/v1/healthz")
                | (_, "/v1/stats")
                | (_, "/v1/corpora")
                | (_, "/metrics")
                | (_, "/v1/debug/requests") => {
                    Response::json(405, error_body("method not allowed"))
                        .with_header("allow", "GET")
                }
                _ => Response::json(404, error_body("no such endpoint")),
            })
        }
    }
}

/// The tenant named by a `/v1/corpora/:name/refresh` path, if this is one.
fn refresh_target(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/corpora/")
        .and_then(|rest| rest.strip_suffix("/refresh"))
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// The tenant named by a `/v1/corpora/:name/snapshot` path, if this is
/// one.
fn snapshot_target(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/corpora/")
        .and_then(|rest| rest.strip_suffix("/snapshot"))
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// The tenant named by a bare `/v1/corpora/:name` path, if this is one.
fn corpus_target(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/corpora/")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// The tenant named by a `/v1/admin/tenants/:name` path, if this is one.
fn admin_tenant_target(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/admin/tenants/")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

fn parse_body<T: Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("body is not UTF-8")))?;
    serde_json::from_str(text)
        .map_err(|e| Response::json(400, error_body(&format!("invalid request body: {e}"))))
}

/// How one request (or batch item) resolves to the tenant it is billed to.
enum Billing {
    /// Admit under this tenant.
    Tenant(String),
    /// Reject with this status/message (cross-tenant `403`, anonymous
    /// `401`).
    Reject(u16, String),
}

/// The tenant a request naming `corpus` is billed to, under the given
/// principal. With auth off the self-declared field stays authoritative;
/// with auth on a tenant key bills itself (its own corpus name is the only
/// one it may also spell out), and an admin key may target any corpus.
fn billing_tenant(corpus: Option<&str>, principal: &Option<Principal>, shared: &Shared) -> Billing {
    match principal {
        None => Billing::Tenant(corpus.unwrap_or(&shared.config.default_corpus).to_string()),
        Some(Principal::Admin) => {
            Billing::Tenant(corpus.unwrap_or(&shared.config.default_corpus).to_string())
        }
        Some(Principal::Tenant(own)) => match corpus {
            Some(named) if named != own => Billing::Reject(
                403,
                format!("key for tenant {own:?} cannot access corpus {named:?}"),
            ),
            _ => Billing::Tenant(own.clone()),
        },
        Some(Principal::Anonymous) => {
            Billing::Reject(401, "missing or invalid bearer key".to_string())
        }
    }
}

/// Validates a generate request on the loop (cheap), then queues it under
/// its (authenticated) tenant. Request-level errors never consume queue
/// budget.
fn admit_generate(
    request: &Request,
    principal: &Option<Principal>,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    let dto: GenerateRequest = match parse_body(&request.body) {
        Ok(dto) => dto,
        Err(response) => return Routed::Inline(response),
    };
    // Resolve before the corpus check so a bad variant is a 400 even for
    // an unknown corpus; the resolved form rides the job to the compute
    // worker so validation happens exactly once.
    let mut resolved = match ResolvedRequest::resolve(&dto) {
        Ok(resolved) => resolved,
        Err(e) => return Routed::Inline(Response::json(e.status, e.body())),
    };
    let tenant = match billing_tenant(dto.corpus.as_deref(), principal, shared) {
        Billing::Tenant(tenant) => tenant,
        Billing::Reject(401, _) => return Routed::Inline(unauthorized()),
        Billing::Reject(status, message) => {
            return Routed::Inline(Response::json(status, error_body(&message)))
        }
    };
    if !shared.registry.contains(&tenant) {
        let e = registry_error(RegistryError::UnknownCorpus(tenant));
        return Routed::Inline(Response::json(e.status, e.body()));
    }
    // A tenant may declare a default variant (manifest `variant` field);
    // it applies only when the request does not choose one itself.
    if dto.variant.is_none() {
        if let Some(variant) = shared.registry.default_variant(&tenant) {
            resolved.variant = variant;
        }
    }
    let header_ms = match header_deadline_ms(request) {
        Ok(header_ms) => header_ms,
        Err(response) => return Routed::Inline(response),
    };
    let deadline = effective_deadline(header_ms, &tenant, shared);
    let work = Work::Generate(tenant.clone(), resolved);
    submit(shared, &tenant, work, me, token, cancel, deadline, trace)
}

/// Admits a batch *per item*: every item is validated on the loop, billed
/// to its own (authenticated) tenant, and queued as its own fair-queue
/// entry — so a mixed-corpus batch draws on each tenant's budget
/// separately, and a tenant at capacity costs exactly its own items a
/// per-item `429` inside the `200` batch response instead of sinking the
/// whole batch.
fn admit_batch(
    request: &Request,
    principal: &Option<Principal>,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    let batch: BatchRequest = match parse_body(&request.body) {
        Ok(batch) => batch,
        Err(response) => return Routed::Inline(response),
    };
    if batch.requests.len() > MAX_BATCH {
        return Routed::Inline(Response::json(
            400,
            error_body(&format!(
                "batch of {} exceeds the {MAX_BATCH}-request limit",
                batch.requests.len()
            )),
        ));
    }
    if batch.requests.is_empty() {
        return Routed::Inline(json_200(&Value::Object(vec![(
            "results".to_string(),
            Value::Array(Vec::new()),
        )])));
    }
    // An anonymous caller is a request-level 401, not 256 item errors.
    if matches!(principal, Some(Principal::Anonymous)) {
        return Routed::Inline(unauthorized());
    }
    // The deadline header covers the whole batch; a bad one is a
    // request-level 400 before any item is admitted.
    let header_ms = match header_deadline_ms(request) {
        Ok(header_ms) => header_ms,
        Err(response) => return Routed::Inline(response),
    };
    let assembly = BatchAssembly::new(batch.requests.len(), Reply::new(me.clone(), token));
    let retry_after = shared.config.retry_after_secs;
    for (index, dto) in batch.requests.iter().enumerate() {
        let ticket = assembly.ticket(index);
        let mut resolved = match ResolvedRequest::resolve(dto) {
            Ok(resolved) => resolved,
            Err(e) => {
                ticket.fill(item_error_value(e.status, &e.message));
                continue;
            }
        };
        let tenant = match billing_tenant(dto.corpus.as_deref(), principal, shared) {
            Billing::Tenant(tenant) => tenant,
            Billing::Reject(status, message) => {
                ticket.fill(item_error_value(status, &message));
                continue;
            }
        };
        if !shared.registry.contains(&tenant) {
            ticket.fill(item_error_value(404, &format!("unknown corpus {tenant:?}")));
            continue;
        }
        if dto.variant.is_none() {
            if let Some(variant) = shared.registry.default_variant(&tenant) {
                resolved.variant = variant;
            }
        }
        let job = Job {
            work: Work::BatchItem {
                ticket,
                corpus: tenant.clone(),
                resolved,
            },
            reply: None,
            cancelled: cancel.clone(),
            lane: tenant.clone(),
            admitted_at: Instant::now(),
            deadline: effective_deadline(header_ms, &tenant, shared),
            trace: trace.clone(),
        };
        match shared.requests.try_push(&tenant, job) {
            Ok(()) => {}
            Err(rejection) => {
                let (status, message) = match &rejection {
                    Rejection::TenantFull(_) => {
                        shared.counters.throttled.inc();
                        (
                            429,
                            format!("tenant {tenant:?} is at capacity, retry after {retry_after}s"),
                        )
                    }
                    Rejection::QueueFull(_) => {
                        shared.counters.rejected.inc();
                        (503, "server is at capacity, retry shortly".to_string())
                    }
                    Rejection::Closed(_) => (503, "server is shutting down".to_string()),
                };
                let job = rejection.into_inner();
                if let Work::BatchItem { ticket, .. } = job.work {
                    ticket.fill(item_error_value(status, &message));
                }
            }
        }
    }
    // The assembly owns the batch's reply; once the last item fills (which
    // may already have happened, if everything was rejected inline) the
    // assembled response travels the normal reply path. A mixed-corpus
    // batch has no single billing tenant for the exemplar record.
    Routed::Queued(None)
}

/// Queues an artifact rebuild for one tenant, billed to that tenant.
fn admit_refresh(
    tenant: &str,
    request: &Request,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    if !shared.registry.contains(tenant) {
        let e = registry_error(RegistryError::UnknownCorpus(tenant.to_string()));
        return Routed::Inline(Response::json(e.status, e.body()));
    }
    let tenant = tenant.to_string();
    let header_ms = match header_deadline_ms(request) {
        Ok(header_ms) => header_ms,
        Err(response) => return Routed::Inline(response),
    };
    let deadline = effective_deadline(header_ms, &tenant, shared);
    let work = Work::Refresh(tenant.clone());
    submit(shared, &tenant, work, me, token, cancel, deadline, trace)
}

/// Queues a corpus-spec build-and-swap for one tenant (`PUT`), billed to
/// that tenant's lane (which the push creates for a brand-new tenant).
fn admit_put(
    tenant: &str,
    request: &Request,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    if !valid_tenant_name(tenant) {
        return Routed::Inline(Response::json(
            400,
            error_body(&format!("invalid tenant name {tenant:?}")),
        ));
    }
    let config: TenantConfig = match parse_body(&request.body) {
        Ok(config) => config,
        Err(response) => return Routed::Inline(response),
    };
    // Cheap validation on the loop; the build itself runs on a worker.
    if let Err(e) = config
        .corpus_spec()
        .and_then(|spec| spec.corpus_config().map(|_| ()))
        .and_then(|()| config.default_variant().map(|_| ()))
    {
        return Routed::Inline(Response::json(400, error_body(&e.to_string())));
    }
    if config.weight == Some(0) || config.queue == Some(0) {
        return Routed::Inline(Response::json(
            400,
            error_body("weight and queue must be at least 1"),
        ));
    }
    if config.inflight == Some(0) || config.deadline_ms == Some(0) {
        return Routed::Inline(Response::json(
            400,
            error_body("inflight and deadline_ms must be at least 1"),
        ));
    }
    // A zero share would self-evict the tenant's cache entry on every
    // insert; reject it like the other zero-valued tuning knobs.
    if config.cache_share == Some(0) {
        return Routed::Inline(Response::json(
            400,
            error_body("cache_share must be at least 1"),
        ));
    }
    // Key rules match manifest validation: the wire path must not accept
    // (and then silently drop) keys the manifest would reject — an empty
    // key, or one already claimed by the admin set or another tenant.
    if shared.config.auth_enabled {
        let table = shared.auth.read().unwrap();
        for key in config.keys() {
            if key.is_empty() {
                return Routed::Inline(Response::json(
                    400,
                    error_body("api keys must be non-empty"),
                ));
            }
            match table.principal(Some(key)) {
                Principal::Admin => {
                    return Routed::Inline(Response::json(
                        400,
                        error_body(&format!("api key {key:?} is already an admin key")),
                    ));
                }
                Principal::Tenant(owner) if owner != tenant => {
                    return Routed::Inline(Response::json(
                        400,
                        error_body(&format!(
                            "api key {key:?} is already claimed by tenant {owner:?}"
                        )),
                    ));
                }
                _ => {}
            }
        }
        for hash in config.hashed_keys() {
            let Some(stored) = StoredKey::parse(hash) else {
                return Routed::Inline(Response::json(
                    400,
                    error_body(&format!(
                        "malformed key_hash {hash:?}: expected \
                         \"<salt-hex>:<digest-hex>\" from `rpg hash-key`"
                    )),
                ));
            };
            match table.encoded_owner(&stored) {
                Some(Principal::Admin) => {
                    return Routed::Inline(Response::json(
                        400,
                        error_body(&format!("key_hash {hash:?} is already an admin key")),
                    ));
                }
                Some(Principal::Tenant(owner)) if owner != tenant => {
                    return Routed::Inline(Response::json(
                        400,
                        error_body(&format!(
                            "key_hash {hash:?} is already claimed by tenant {owner:?}"
                        )),
                    ));
                }
                _ => {}
            }
        }
    }
    let header_ms = match header_deadline_ms(request) {
        Ok(header_ms) => header_ms,
        Err(response) => return Routed::Inline(response),
    };
    let deadline = effective_deadline(header_ms, tenant, shared);
    let work = Work::Put {
        name: tenant.to_string(),
        config: Box::new(config),
    };
    submit(shared, tenant, work, me, token, cancel, deadline, trace)
}

/// Queues a manifest re-read-and-apply, billed to the reserved admin lane.
fn admit_reload(
    request: &Request,
    shared: &Shared,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    trace: &RequestTrace,
) -> Routed {
    if shared.config.manifest_path.is_none() {
        return Routed::Inline(Response::json(
            409,
            error_body("server was started without --manifest; nothing to reload"),
        ));
    }
    let header_ms = match header_deadline_ms(request) {
        Ok(header_ms) => header_ms,
        Err(response) => return Routed::Inline(response),
    };
    let deadline = effective_deadline(header_ms, ADMIN_LANE, shared);
    submit(
        shared,
        ADMIN_LANE,
        Work::Reload,
        me,
        token,
        cancel,
        deadline,
        trace,
    )
}

/// The tenant's metrics cell, created (and registered into the shared
/// metrics registry, labelled with the tenant) on first touch.
fn tenant_metrics(shared: &Shared, tenant: &str) -> Arc<TenantMetrics> {
    if let Some(metrics) = shared.metrics.read().unwrap().get(tenant) {
        return metrics.clone();
    }
    shared
        .metrics
        .write()
        .unwrap()
        .entry(tenant.to_string())
        .or_insert_with(|| Arc::new(TenantMetrics::registered(&shared.obs, tenant)))
        .clone()
}

/// Parses and validates the client's `x-rpg-deadline-ms` header:
/// `Ok(None)` when absent, `Ok(Some(ms))` for a positive integer. Zero and
/// malformed values are a `400` with a pointed message — a zero budget is
/// already expired on arrival, so accepting it would shed every request as
/// a `503` billed to the tenant's `shed` counter, and silently ignoring
/// garbage would run the request with no deadline at all, the opposite of
/// what the caller asked for.
fn header_deadline_ms(request: &Request) -> Result<Option<u64>, Response> {
    let Some(raw) = request.header("x-rpg-deadline-ms") else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(0) => Err(Response::json(
            400,
            error_body(
                "x-rpg-deadline-ms must be at least 1: a zero budget is already \
                 expired on arrival and every request would be shed",
            ),
        )),
        Ok(ms) => Ok(Some(ms)),
        Err(_) => Err(Response::json(
            400,
            error_body(&format!(
                "invalid x-rpg-deadline-ms {raw:?}: expected a positive integer \
                 millisecond budget"
            )),
        )),
    }
}

/// The absolute deadline a request admitted now must meet: the minimum of
/// the client's validated `x-rpg-deadline-ms` budget (see
/// [`header_deadline_ms`]) and the tenant's policy budget (manifest
/// `deadline_ms`, falling back to the server-wide default). `None` — no
/// header, no policy — means the work never expires queued.
fn effective_deadline(header_ms: Option<u64>, tenant: &str, shared: &Shared) -> Option<Instant> {
    let policy_ms = shared
        .deadlines
        .read()
        .unwrap()
        .get(tenant)
        .copied()
        .or(shared.config.default_deadline_ms);
    let budget_ms = match (header_ms, policy_ms) {
        (Some(header), Some(policy)) => Some(header.min(policy)),
        (header, policy) => header.or(policy),
    };
    budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// Offers work to the fair queue; turns per-tenant overflow into `429` and
/// global overflow into `503`, both answered inline without a reply ever
/// being owed.
#[allow(clippy::too_many_arguments)]
fn submit(
    shared: &Shared,
    tenant: &str,
    work: Work,
    me: &Arc<LoopShared>,
    token: usize,
    cancel: &Arc<AtomicBool>,
    deadline: Option<Instant>,
    trace: &RequestTrace,
) -> Routed {
    let job = Job {
        work,
        reply: Some(Reply::new(me.clone(), token)),
        cancelled: cancel.clone(),
        lane: tenant.to_string(),
        admitted_at: Instant::now(),
        deadline,
        trace: trace.clone(),
    };
    let retry_after = shared.config.retry_after_secs.to_string();
    match shared.requests.try_push(tenant, job) {
        Ok(()) => Routed::Queued(Some(tenant.to_string())),
        Err(Rejection::TenantFull(job)) => {
            cancel_reply(job);
            shared.counters.throttled.inc();
            Routed::Inline(
                Response::json(
                    429,
                    error_body(&format!("tenant {tenant:?} is at capacity, retry shortly")),
                )
                .with_header("retry-after", retry_after),
            )
        }
        Err(Rejection::QueueFull(job)) => {
            cancel_reply(job);
            shared.counters.rejected.inc();
            Routed::Inline(
                Response::json(503, error_body("server is at capacity, retry shortly"))
                    .with_header("retry-after", retry_after),
            )
        }
        Err(Rejection::Closed(job)) => {
            cancel_reply(job);
            Routed::Inline(Response::json(503, error_body("server is shutting down")))
        }
    }
}

/// Disarms the reply of a job the queue handed back: its rejection is
/// answered inline, so nothing may be posted later.
fn cancel_reply(job: Job) {
    if let Some(reply) = job.reply {
        reply.cancel();
    }
}

/// Pairs the in-flight charge `pop` took on a lane with its release, even
/// when the job panics on the way out. `run_job` guards the pipeline with
/// its own `catch_unwind`, but a panic in the reply/ticket/metrics code
/// *past* that guard would otherwise unwind through `compute_loop` —
/// killing the worker thread **and** leaking the lane's in-flight charge,
/// silently shrinking the tenant's concurrency cap for the life of the
/// process.
struct InflightGuard<'a> {
    requests: &'a FairQueue<Job>,
    lane: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.requests.release(&self.lane);
    }
}

fn compute_loop(shared: &Shared) {
    while let Some(job) = shared.requests.pop() {
        // Pairs with the in-flight charge `pop` took on the lane; a capped
        // tenant's next queued job becomes poppable only here, so the cap
        // bounds *compute occupancy*, not just queue depth. The drop guard
        // releases on the unwind path too, and the `catch_unwind` keeps the
        // worker pool at full strength across any escaped panic.
        let guard = InflightGuard {
            requests: &shared.requests,
            lane: job.lane.clone(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(job, shared)));
        drop(guard);
        if outcome.is_err() {
            obs_log::error(
                "server",
                "a compute job panicked past its pipeline guard; worker continues",
                &[],
            );
        }
    }
}

/// Opens a root-level span on a request's recorder, returning the handle
/// [`close_span`] needs. `None` when the trace carries no recorder (ring
/// disabled) — span recording must cost nothing then.
fn open_span(trace: &RequestTrace, name: &'static str) -> Option<(SharedRecorder, usize)> {
    let recorder = trace.recorder.as_ref()?;
    let index = recorder.lock().ok()?.open(None, name);
    Some((recorder.clone(), index))
}

fn close_span(open: &Option<(SharedRecorder, usize)>) {
    if let Some((recorder, index)) = open {
        if let Ok(mut rec) = recorder.lock() {
            rec.close(*index);
        }
    }
}

/// The pipeline-facing slice of a request's trace, with stage spans
/// parented under the given span (the worker's `compute` span).
fn stage_trace(
    trace: &RequestTrace,
    parent: &Option<(SharedRecorder, usize)>,
) -> Option<StageTrace> {
    let recorder = trace.recorder.as_ref()?;
    Some(StageTrace {
        recorder: recorder.clone(),
        parent: parent.as_ref().map(|(_, index)| *index),
    })
}

/// Fault-injection switches for the loopback test suite. Not part of the
/// public API.
#[doc(hidden)]
pub mod test_hooks {
    use std::sync::atomic::AtomicBool;

    /// When armed, the next non-batch job panics *after* its reply is sent
    /// — past `run_job`'s pipeline guard — exercising the worker's
    /// in-flight release guard. Self-disarms on first use.
    pub static PANIC_AFTER_REPLY: AtomicBool = AtomicBool::new(false);
}

/// Executes one popped job end to end: the cancellation and deadline gates
/// first (a gone client or blown budget sheds the work before the pipeline
/// runs), then the guarded compute, the tenant's latency sample, and the
/// reply (sample first, so a client holding the response always finds it
/// reflected in /metrics and /v1/stats).
fn run_job(job: Job, shared: &Shared) {
    let Job {
        work,
        reply,
        cancelled,
        lane,
        admitted_at,
        deadline,
        trace,
    } = job;
    // Everything logged while this job runs — by the server, the service
    // layer, or the pipeline — carries the request's trace ID.
    let _log_scope = obs_log::trace_scope(trace.id);
    // Queue wait is the span from admission to this pop, whatever happens
    // next (shed, cancel, or compute).
    if let Some(recorder) = trace.recorder.as_ref() {
        if let Ok(mut rec) = recorder.lock() {
            rec.record(None, "queue_wait", admitted_at);
        }
    }
    let metrics = tenant_metrics(shared, &lane);
    let abandoned = cancelled.load(Ordering::SeqCst);
    let expired = !abandoned && deadline.is_some_and(|deadline| Instant::now() >= deadline);
    if expired {
        metrics.shed.inc();
    }
    match work {
        Work::BatchItem {
            ticket,
            corpus,
            resolved,
        } => {
            if abandoned {
                // Nobody can read the result; skip the pipeline run.
                metrics.cancelled.inc();
                ticket.fill(item_error_value(500, "client disconnected"));
                return;
            }
            if expired {
                ticket.fill(item_error_value(
                    503,
                    "deadline exceeded before compute, retry shortly",
                ));
                return;
            }
            // A panic inside the pipeline must never take the worker
            // thread down with it — the item gets an error slot and the
            // worker lives on.
            let compute = open_span(&trace, "compute");
            let stage = stage_trace(&trace, &compute);
            let value = catch_unwind(AssertUnwindSafe(|| {
                run_resolved(&corpus, &resolved, shared, deadline, &metrics, stage)
            }))
            .unwrap_or_else(|_| {
                Err(ApiError {
                    status: 500,
                    message: "internal error".to_string(),
                })
            });
            close_span(&compute);
            // The sample lands before the ticket is filled so a client that
            // observes the response is guaranteed to observe the sample too
            // (/v1/stats and /metrics stay consistent with what was served).
            metrics.latency.record(admitted_at.elapsed());
            ticket.fill(match value {
                Ok(value) => value,
                Err(e) => item_error_value(e.status, &e.message),
            });
        }
        work => {
            let reply = reply.expect("non-batch work carries a reply");
            if abandoned {
                // The reply is still delivered so the owning loop can
                // free the connection's slot; the bytes are never
                // written because the slot is marked abandoned.
                metrics.cancelled.inc();
                reply.send(Response::json(500, error_body("client disconnected")));
                return;
            }
            if expired {
                reply.send(
                    Response::json(
                        503,
                        error_body("deadline exceeded before compute, retry shortly"),
                    )
                    .with_header("retry-after", shared.config.retry_after_secs.to_string()),
                );
                return;
            }
            let compute = open_span(&trace, "compute");
            let stage = stage_trace(&trace, &compute);
            let response = catch_unwind(AssertUnwindSafe(|| {
                execute(&work, shared, deadline, &metrics, stage)
            }))
            .unwrap_or_else(|_| Response::json(500, error_body("internal error")));
            close_span(&compute);
            // Sample before the send: once the client holds the response it
            // must also find the sample in /metrics and /v1/stats.
            metrics.latency.record(admitted_at.elapsed());
            reply.send(response);
            if test_hooks::PANIC_AFTER_REPLY.swap(false, Ordering::SeqCst) {
                panic!("test hook: panic after reply");
            }
        }
    }
}

fn execute(
    work: &Work,
    shared: &Shared,
    deadline: Option<Instant>,
    metrics: &TenantMetrics,
    stage: Option<StageTrace>,
) -> Response {
    match work {
        Work::Generate(corpus, resolved) => {
            match run_resolved(corpus, resolved, shared, deadline, metrics, stage) {
                Ok(value) => json_200(&value),
                Err(e) => Response::json(e.status, e.body()),
            }
        }
        Work::BatchItem { .. } => unreachable!("batch items are executed by compute_loop"),
        Work::Refresh(tenant) => match shared.registry.refresh_in_place(tenant) {
            Ok(epoch) => json_200(&Value::Object(vec![
                ("corpus".to_string(), Value::String(tenant.clone())),
                ("epoch".to_string(), Value::Number(epoch as f64)),
                ("refreshed".to_string(), Value::Bool(true)),
            ])),
            Err(e) => {
                let e = registry_error(e);
                Response::json(e.status, e.body())
            }
        },
        Work::Put { name, config } => {
            let created = !shared.registry.contains(name);
            match shared.registry.register_spec(name.clone(), config) {
                Ok(epoch) => {
                    apply_tenant_tuning(shared, name, config);
                    json_200(&Value::Object(vec![
                        ("corpus".to_string(), Value::String(name.clone())),
                        ("epoch".to_string(), Value::Number(epoch as f64)),
                        ("created".to_string(), Value::Bool(created)),
                    ]))
                }
                Err(e) => Response::json(400, error_body(&format!("invalid corpus spec: {e}"))),
            }
        }
        Work::Reload => {
            let path = shared
                .config
                .manifest_path
                .as_deref()
                .expect("reload admitted only with a manifest path");
            match std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|text| {
                    Manifest::from_json(&text).map_err(|e| format!("invalid manifest {path}: {e}"))
                })
                .and_then(|manifest| apply_manifest_to(shared, &manifest))
            {
                Ok(diff) => json_200(&diff_value(&diff)),
                Err(message) => Response::json(400, error_body(&message)),
            }
        }
    }
}

/// Applies a manifest tenant's server-side tuning (queue weight/bound,
/// in-flight cap, deadline budget, bearer keys) to the running server.
fn apply_tenant_tuning(shared: &Shared, name: &str, config: &TenantConfig) {
    shared.requests.set_weight(name, config.weight.unwrap_or(1));
    shared.requests.set_tenant_bound(
        name,
        config.queue.unwrap_or(shared.config.tenant_queue_capacity),
    );
    match config.inflight {
        Some(cap) => shared.requests.set_inflight_cap(name, cap),
        None => shared.requests.clear_inflight_cap(name),
    }
    let mut deadlines = shared.deadlines.write().unwrap();
    match config.deadline_ms {
        Some(budget) => {
            deadlines.insert(name.to_string(), budget);
        }
        None => {
            deadlines.remove(name);
        }
    }
    drop(deadlines);
    let mut trace_slow = shared.trace_slow.write().unwrap();
    match config.trace_slow_ms {
        Some(threshold) => {
            trace_slow.insert(name.to_string(), threshold);
        }
        None => {
            trace_slow.remove(name);
        }
    }
    drop(trace_slow);
    if shared.config.auth_enabled {
        shared
            .auth
            .write()
            .unwrap()
            .grant_tenant_full(name, config.keys(), config.hashed_keys());
    }
}

/// Applies a whole manifest to a running server: the registry's tenant set
/// first (create/replace/remove — the CPU-heavy part), then queue tuning
/// (removed tenants' lanes retire once drained) and a key-table swap.
fn apply_manifest_to(shared: &Shared, manifest: &Manifest) -> Result<ManifestDiff, String> {
    let diff = shared
        .registry
        .apply_manifest(manifest)
        .map_err(|e| e.to_string())?;
    for (name, config) in manifest.tenants_sorted() {
        shared.requests.set_weight(name, config.weight.unwrap_or(1));
        shared.requests.set_tenant_bound(
            name,
            config.queue.unwrap_or(shared.config.tenant_queue_capacity),
        );
    }
    for (name, cap) in manifest_inflight_caps(manifest, shared.config.workers) {
        shared.requests.set_inflight_cap(&name, cap);
    }
    *shared.deadlines.write().unwrap() = manifest
        .tenants_sorted()
        .iter()
        .filter_map(|(name, config)| config.deadline_ms.map(|d| (name.to_string(), d)))
        .collect();
    *shared.trace_slow.write().unwrap() = manifest
        .tenants_sorted()
        .iter()
        .filter_map(|(name, config)| config.trace_slow_ms.map(|t| (name.to_string(), t)))
        .collect();
    if let Some(level) = manifest.log_level.as_deref() {
        // Validated by `Manifest::validate`, so parse can only fail if the
        // manifest bypassed validation; keep the current level in that case.
        if let Some(level) = obs_log::Level::parse(level) {
            obs_log::set_level(level);
        }
    }
    for name in &diff.removed {
        shared.requests.retire(name);
    }
    *shared.auth.write().unwrap() = AuthTable::from_manifest(manifest);
    Ok(diff)
}

/// The JSON rendering of a [`ManifestDiff`] (the `/v1/admin/reload`
/// response body).
fn diff_value(diff: &ManifestDiff) -> Value {
    let names = |list: &[String]| Value::Array(list.iter().cloned().map(Value::String).collect());
    Value::Object(vec![
        ("created".to_string(), names(&diff.created)),
        ("replaced".to_string(), names(&diff.replaced)),
        ("removed".to_string(), names(&diff.removed)),
        ("unchanged".to_string(), names(&diff.unchanged)),
    ])
}

fn registry_error(e: RegistryError) -> ApiError {
    match e {
        RegistryError::UnknownCorpus(name) => ApiError {
            status: 404,
            message: format!("unknown corpus {name:?}"),
        },
        RegistryError::Request(RepagerError::Config(e)) => ApiError {
            status: 400,
            message: format!("invalid configuration: {e}"),
        },
        RegistryError::Request(RepagerError::Graph(e)) => ApiError {
            status: 500,
            message: format!("pipeline failure: {e}"),
        },
        // Same shape as the pre-compute shed: overload-class, retryable.
        RegistryError::Request(RepagerError::DeadlineExceeded) => ApiError {
            status: 503,
            message: "deadline exceeded mid-compute, retry shortly".to_string(),
        },
    }
}

/// Runs an already-validated request against its corpus, shedding its
/// remaining pipeline stages if `deadline` passes mid-compute.
fn run_resolved(
    corpus: &str,
    resolved: &ResolvedRequest,
    shared: &Shared,
    deadline: Option<Instant>,
    metrics: &TenantMetrics,
    stage: Option<StageTrace>,
) -> Result<Value, ApiError> {
    let served = shared
        .registry
        .generate_observed(corpus, &resolved.as_path_request(), deadline, stage)
        .map_err(|e| {
            if matches!(e, RegistryError::Request(RepagerError::DeadlineExceeded)) {
                // A mid-compute shed counts into the tenant's `shed` total
                // (kept comparable with pre-compute sheds) plus its own
                // distinguishing stat.
                metrics.shed.inc();
                metrics.shed_mid_compute.inc();
            }
            registry_error(e)
        })?;
    if !served.cached {
        shared
            .counters
            .timings
            .lock()
            .unwrap()
            .record(&served.output.timings);
    }
    Ok(generate_response_value(
        corpus,
        &served.output,
        served.cached,
    ))
}

/// `GET /v1/corpora`: the control-plane listing — epoch, corpus spec (when
/// known), cache occupancy and queue tuning per tenant. An admin key (or
/// auth-off) sees every tenant; a tenant key sees only its own row, so one
/// tenant's corpus recipe and tuning are never disclosed to another.
fn handle_corpora_list(shared: &Shared, principal: &Option<Principal>) -> Response {
    let own = match principal {
        Some(Principal::Tenant(name)) => Some(name.as_str()),
        _ => None,
    };
    let corpora: Vec<Value> = shared
        .registry
        .overview()
        .into_iter()
        .filter(|row| own.is_none_or(|own| row.name == own))
        .map(|row| {
            let spec = match &row.spec {
                Some(spec) => serde::Serialize::to_value(spec),
                None => Value::Null,
            };
            Value::Object(vec![
                ("name".to_string(), Value::String(row.name.clone())),
                ("epoch".to_string(), Value::Number(row.epoch as f64)),
                ("corpus".to_string(), spec),
                (
                    "cached_entries".to_string(),
                    Value::Number(row.cached_entries as f64),
                ),
                (
                    "cache_share".to_string(),
                    row.cache_share
                        .map_or(Value::Null, |share| Value::Number(share as f64)),
                ),
                (
                    "weight".to_string(),
                    Value::Number(shared.requests.weight(&row.name) as f64),
                ),
                (
                    "queue".to_string(),
                    Value::Number(shared.requests.tenant_bound(&row.name) as f64),
                ),
            ])
        })
        .collect();
    json_200(&Value::Object(vec![(
        "corpora".to_string(),
        Value::Array(corpora),
    )]))
}

/// `GET /v1/corpora/:name/snapshot` (admin-gated): exports the tenant's
/// live artifacts as a binary snapshot — the same container
/// `rpg snapshot build` writes, embedding the tenant's spec fingerprint
/// when it has a spec ([`snapshot::NO_SPEC_FINGERPRINT`] otherwise, so a
/// spec-less export can be inspected but never matches a manifest spec).
/// The body is streamed through the event loop's [`ResponseEmitter`] in
/// bounded chunks like every other large response.
fn handle_snapshot_export(tenant: &str, shared: &Shared) -> Response {
    let Some(artifacts) = shared.registry.artifacts(tenant) else {
        let e = registry_error(RegistryError::UnknownCorpus(tenant.to_string()));
        return Response::json(e.status, e.body());
    };
    let fingerprint = shared
        .registry
        .spec(tenant)
        .map(|spec| snapshot::spec_fingerprint(&spec))
        .unwrap_or(snapshot::NO_SPEC_FINGERPRINT);
    match snapshot::encode(&artifacts, fingerprint) {
        Ok(bytes) => Response::json(200, bytes)
            .with_header("content-type", "application/octet-stream")
            .with_header(
                "content-disposition",
                format!("attachment; filename=\"{tenant}.rpgsnap\""),
            ),
        Err(e) => Response::json(500, error_body(&format!("snapshot encode failed: {e}"))),
    }
}

/// `DELETE /v1/corpora/:name`: removes the tenant, evicts its cache
/// entries, retires its queue lane (draining queued work first) and
/// revokes its keys. Subsequent generates against it are `404`s.
fn handle_corpus_delete(tenant: &str, shared: &Shared) -> Response {
    if !shared.registry.remove(tenant) {
        return Response::json(404, error_body(&format!("unknown corpus {tenant:?}")));
    }
    shared.requests.retire(tenant);
    if shared.config.auth_enabled {
        shared.auth.write().unwrap().revoke_tenant(tenant);
    }
    json_200(&Value::Object(vec![
        ("corpus".to_string(), Value::String(tenant.to_string())),
        ("removed".to_string(), Value::Bool(true)),
    ]))
}

/// `PATCH /v1/admin/tenants/:name`: retunes a live tenant's DRR weight,
/// queue bound, in-flight cap and/or deadline budget without touching
/// queued work.
fn handle_tenant_patch(tenant: &str, body: &[u8], shared: &Shared) -> Response {
    let patch: TenantPatch = match parse_body(body) {
        Ok(patch) => patch,
        Err(response) => return response,
    };
    if !shared.registry.contains(tenant) {
        return Response::json(404, error_body(&format!("unknown corpus {tenant:?}")));
    }
    if patch.weight == Some(0) || patch.queue == Some(0) {
        return Response::json(400, error_body("weight and queue must be at least 1"));
    }
    if patch.inflight == Some(0) || patch.deadline_ms == Some(0) {
        return Response::json(
            400,
            error_body("inflight and deadline_ms must be at least 1"),
        );
    }
    if patch.weight.is_none()
        && patch.queue.is_none()
        && patch.inflight.is_none()
        && patch.deadline_ms.is_none()
        && patch.trace_slow_ms.is_none()
    {
        return Response::json(
            400,
            error_body(
                "nothing to change: set weight, queue, inflight, deadline_ms and/or trace_slow_ms",
            ),
        );
    }
    if let Some(weight) = patch.weight {
        shared.requests.set_weight(tenant, weight);
    }
    if let Some(bound) = patch.queue {
        shared.requests.set_tenant_bound(tenant, bound);
    }
    if let Some(cap) = patch.inflight {
        shared.requests.set_inflight_cap(tenant, cap);
    }
    if let Some(budget) = patch.deadline_ms {
        shared
            .deadlines
            .write()
            .unwrap()
            .insert(tenant.to_string(), budget);
    }
    if let Some(threshold) = patch.trace_slow_ms {
        // 0 is legal: it means "capture an exemplar for every request".
        shared
            .trace_slow
            .write()
            .unwrap()
            .insert(tenant.to_string(), threshold);
    }
    json_200(&Value::Object(vec![
        ("tenant".to_string(), Value::String(tenant.to_string())),
        (
            "weight".to_string(),
            Value::Number(shared.requests.weight(tenant) as f64),
        ),
        (
            "queue".to_string(),
            Value::Number(shared.requests.tenant_bound(tenant) as f64),
        ),
        (
            "inflight".to_string(),
            shared
                .requests
                .tenant_inflight_cap(tenant)
                .map_or(Value::Null, |cap| Value::Number(cap as f64)),
        ),
        (
            "deadline_ms".to_string(),
            shared
                .deadlines
                .read()
                .unwrap()
                .get(tenant)
                .map_or(Value::Null, |budget| Value::Number(*budget as f64)),
        ),
        (
            "trace_slow_ms".to_string(),
            shared
                .trace_slow
                .read()
                .unwrap()
                .get(tenant)
                .map_or(Value::Null, |threshold| Value::Number(*threshold as f64)),
        ),
    ]))
}

fn handle_healthz(shared: &Shared) -> Response {
    let corpora: Vec<Value> = shared
        .registry
        .tenants()
        .into_iter()
        .map(Value::String)
        .collect();
    json_200(&Value::Object(vec![
        ("status".to_string(), Value::String("ok".to_string())),
        ("corpora".to_string(), Value::Array(corpora)),
        (
            "workers".to_string(),
            Value::Number(shared.config.workers.max(1) as f64),
        ),
        ("queue".to_string(), queue_value(shared)),
    ]))
}

fn handle_stats(shared: &Shared) -> Response {
    let counters = &shared.counters;
    let cache = shared.registry.cache_stats();
    let aggregate = *counters.timings.lock().unwrap();
    let count = |counter: &Counter| Value::Number(counter.get() as f64);
    let handled = counters.ok.get() + counters.client_errors.get() + counters.server_errors.get();
    json_200(&Value::Object(vec![
        ("queue".to_string(), queue_value(shared)),
        (
            "connections".to_string(),
            Value::Object(vec![
                ("accepted".to_string(), count(&counters.accepted)),
                (
                    "open".to_string(),
                    Value::Number(shared.open_connections.load(Ordering::SeqCst) as f64),
                ),
                (
                    "drivers".to_string(),
                    Value::Number(shared.loops.len() as f64),
                ),
                (
                    "io_backend".to_string(),
                    Value::String(shared.io_backend.as_str().to_string()),
                ),
                (
                    "max".to_string(),
                    Value::Number(shared.config.max_connections as f64),
                ),
                ("rejected_503".to_string(), count(&counters.rejected)),
            ]),
        ),
        (
            "responses".to_string(),
            Value::Object(vec![
                ("handled".to_string(), Value::Number(handled as f64)),
                ("ok".to_string(), count(&counters.ok)),
                ("client_error".to_string(), count(&counters.client_errors)),
                ("server_error".to_string(), count(&counters.server_errors)),
            ]),
        ),
        (
            "cache".to_string(),
            Value::Object(vec![
                ("hits".to_string(), Value::Number(cache.hits as f64)),
                ("misses".to_string(), Value::Number(cache.misses as f64)),
                ("entries".to_string(), Value::Number(cache.entries as f64)),
                ("capacity".to_string(), Value::Number(cache.capacity as f64)),
            ]),
        ),
        (
            "pipeline".to_string(),
            Value::Object(vec![
                (
                    "requests".to_string(),
                    Value::Number(aggregate.requests as f64),
                ),
                ("sum".to_string(), timings_value(&aggregate.sums)),
                ("mean".to_string(), timings_value(&aggregate.means())),
            ]),
        ),
        ("tenants".to_string(), tenants_value(shared)),
    ]))
}

/// `GET /metrics`: the same registry `/v1/stats` reads, rendered as
/// Prometheus text exposition 0.0.4. Sampled gauges (connection/queue/cache
/// occupancy) are refreshed at scrape time so the scrape never waits on the
/// hot path to push them.
fn handle_metrics(shared: &Shared) -> Response {
    let counters = &shared.counters;
    counters
        .open_connections
        .set(shared.open_connections.load(Ordering::SeqCst) as i64);
    counters.queue_depth.set(shared.requests.depth() as i64);
    let cache = shared.registry.cache_stats();
    counters.cache_hits.set(cache.hits);
    counters.cache_misses.set(cache.misses);
    counters.cache_entries.set(cache.entries as i64);
    Response {
        status: 200,
        headers: vec![(
            "content-type".to_string(),
            "text/plain; version=0.0.4".to_string(),
        )],
        body: shared.obs.render().into_bytes(),
    }
}

/// `GET /v1/debug/requests` (admin-gated): the slow-request exemplar ring,
/// newest first, each entry carrying its full span tree.
fn handle_debug_requests(shared: &Shared) -> Response {
    let spans_value = |spans: &[Span]| {
        Value::Array(
            spans
                .iter()
                .map(|span| {
                    Value::Object(vec![
                        ("name".to_string(), Value::String(span.name.to_string())),
                        (
                            "start_us".to_string(),
                            Value::Number(span.start.as_micros() as f64),
                        ),
                        (
                            "duration_us".to_string(),
                            Value::Number(span.duration.as_micros() as f64),
                        ),
                        (
                            "parent".to_string(),
                            span.parent
                                .map_or(Value::Null, |parent| Value::Number(parent as f64)),
                        ),
                    ])
                })
                .collect(),
        )
    };
    let requests: Vec<Value> = shared
        .trace_log
        .snapshot()
        .iter()
        .map(|record| {
            Value::Object(vec![
                ("trace_id".to_string(), Value::String(record.id.to_string())),
                (
                    "tenant".to_string(),
                    record
                        .tenant
                        .as_ref()
                        .map_or(Value::Null, |t| Value::String(t.clone())),
                ),
                ("status".to_string(), Value::Number(record.status as f64)),
                (
                    "latency_ms".to_string(),
                    Value::Number(record.latency.as_secs_f64() * 1e3),
                ),
                ("unix_ms".to_string(), Value::Number(record.unix_ms as f64)),
                ("spans".to_string(), spans_value(&record.spans)),
            ])
        })
        .collect();
    json_200(&Value::Object(vec![
        (
            "capacity".to_string(),
            Value::Number(shared.trace_log.capacity() as f64),
        ),
        ("requests".to_string(), Value::Array(requests)),
    ]))
}

/// The per-tenant overload section of `/v1/stats`: completed-request
/// latency quantiles (milliseconds, log2-bucket upper bounds) plus the
/// shed/cancelled counters and the tenant's live compute occupancy.
fn tenants_value(shared: &Shared) -> Value {
    let metrics = shared.metrics.read().unwrap();
    let mut names: Vec<&String> = metrics.keys().collect();
    names.sort();
    let ms = |duration: Option<Duration>| {
        duration.map_or(Value::Null, |d| Value::Number(d.as_secs_f64() * 1e3))
    };
    let rows = names
        .into_iter()
        .map(|name| {
            let tenant = &metrics[name];
            let latency = &tenant.latency;
            (
                name.clone(),
                Value::Object(vec![
                    (
                        "latency".to_string(),
                        Value::Object(vec![
                            ("count".to_string(), Value::Number(latency.count() as f64)),
                            ("mean".to_string(), ms(latency.mean())),
                            ("p50".to_string(), ms(latency.quantile(0.5))),
                            ("p99".to_string(), ms(latency.quantile(0.99))),
                            ("p999".to_string(), ms(latency.quantile(0.999))),
                        ]),
                    ),
                    ("shed".to_string(), Value::Number(tenant.shed.get() as f64)),
                    (
                        "shed_mid_compute".to_string(),
                        Value::Number(tenant.shed_mid_compute.get() as f64),
                    ),
                    (
                        "cancelled".to_string(),
                        Value::Number(tenant.cancelled.get() as f64),
                    ),
                    (
                        "in_flight".to_string(),
                        Value::Number(shared.requests.tenant_inflight(name) as f64),
                    ),
                ]),
            )
        })
        .collect();
    Value::Object(rows)
}

/// The request-queue section of `/v1/stats` and `/v1/healthz`: global
/// depth/bound, the `429` counter, and one entry per tenant seen so far
/// with its depth, bound, and DRR weight.
fn queue_value(shared: &Shared) -> Value {
    let requests = &shared.requests;
    let tenants: Vec<(String, Value)> = requests
        .tenant_depths()
        .into_iter()
        .map(|(name, depth)| {
            let weight = requests.weight(&name);
            let capacity = requests.tenant_bound(&name);
            let in_flight = requests.tenant_inflight(&name);
            let inflight_cap = requests
                .tenant_inflight_cap(&name)
                .map_or(Value::Null, |cap| Value::Number(cap as f64));
            (
                name,
                Value::Object(vec![
                    ("depth".to_string(), Value::Number(depth as f64)),
                    ("capacity".to_string(), Value::Number(capacity as f64)),
                    ("weight".to_string(), Value::Number(weight as f64)),
                    ("in_flight".to_string(), Value::Number(in_flight as f64)),
                    ("inflight".to_string(), inflight_cap),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("depth".to_string(), Value::Number(requests.depth() as f64)),
        (
            "capacity".to_string(),
            Value::Number(requests.capacity() as f64),
        ),
        (
            "throttled_429".to_string(),
            Value::Number(shared.counters.throttled.get() as f64),
        ),
        ("tenants".to_string(), Value::Object(tenants)),
    ])
}

fn json_200(value: &Value) -> Response {
    Response::json(
        200,
        serde_json::to_string(value).expect("response serialises"),
    )
}
