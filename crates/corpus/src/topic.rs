//! Research-topic taxonomy with prerequisite relations.
//!
//! SurveyBank restricts itself to computer science and categorises surveys
//! into the ten CCF domains listed in Table I of the paper.  The synthetic
//! corpus mirrors that: a [`TopicCatalog`] holds a set of research topics,
//! each belonging to one [`Domain`], carrying a term vocabulary used to
//! generate titles/abstracts, and — crucially for the Reading Path
//! Generation task — a list of *prerequisite topics*.  Papers of a topic cite
//! foundational papers of its prerequisite topics, which is exactly the
//! structure that makes engine top-K results miss part of a survey's
//! reference list (Observation I) while 1st/2nd-order citation neighbours
//! recover it (Observation II).

use serde::{Deserialize, Serialize};

/// The ten CCF-style domains of Table I, plus an "uncertain" bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Artificial Intelligence.
    ArtificialIntelligence,
    /// Interdisciplinary and emerging subjects.
    Interdisciplinary,
    /// Computer networks.
    ComputerNetwork,
    /// Computer graphics and multimedia.
    GraphicsMultimedia,
    /// Databases, data mining, information retrieval.
    DatabaseDataMiningIr,
    /// Software engineering, system software, programming languages.
    SoftwareEngineering,
    /// Computer architecture, parallel/distributed computing, storage.
    ArchitectureParallelStorage,
    /// Network and information security.
    Security,
    /// Computer science theory.
    Theory,
    /// Human-computer interaction and pervasive computing.
    HumanComputerInteraction,
    /// Papers whose venue could not be categorised (Table I's largest row).
    Uncertain,
}

impl Domain {
    /// All domains in Table I order (excluding `Uncertain`).
    pub const RANKED: [Domain; 10] = [
        Domain::ArtificialIntelligence,
        Domain::Interdisciplinary,
        Domain::ComputerNetwork,
        Domain::GraphicsMultimedia,
        Domain::DatabaseDataMiningIr,
        Domain::SoftwareEngineering,
        Domain::ArchitectureParallelStorage,
        Domain::Security,
        Domain::Theory,
        Domain::HumanComputerInteraction,
    ];

    /// Human-readable name matching Table I.
    pub fn name(self) -> &'static str {
        match self {
            Domain::ArtificialIntelligence => "Artificial Intelligence",
            Domain::Interdisciplinary => "Interdisciplinary, Emerging Subjects",
            Domain::ComputerNetwork => "Computer Network",
            Domain::GraphicsMultimedia => "Computer Graphics and Multimedia",
            Domain::DatabaseDataMiningIr => "Database, Data Mining, Information Retrieval",
            Domain::SoftwareEngineering => {
                "Software Engineering, System Software, Programming Language"
            }
            Domain::ArchitectureParallelStorage => {
                "Computer Architecture, Parallel and Distributed Computing, Storage System"
            }
            Domain::Security => "Network and Information Security",
            Domain::Theory => "Computer Science Theory",
            Domain::HumanComputerInteraction => {
                "Human-Computer Interaction and Pervasive Computing"
            }
            Domain::Uncertain => "Uncertain Topics",
        }
    }
}

/// A dense topic identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A research topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topic {
    /// Dense identifier.
    pub id: TopicId,
    /// Topic name, e.g. "pretrained language models".
    pub name: String,
    /// The domain the topic belongs to.
    pub domain: Domain,
    /// Terms characteristic of the topic, used to generate titles and
    /// abstracts.
    pub terms: Vec<String>,
    /// Topics whose foundational papers are prerequisites for this topic.
    pub prerequisites: Vec<TopicId>,
    /// Relative size of the topic (how many papers the generator allocates),
    /// as a multiplier on the per-topic base count.
    pub weight: f64,
}

/// The catalogue of all topics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TopicCatalog {
    topics: Vec<Topic>,
}

/// Specification of a topic before id assignment; used by
/// [`TopicCatalog::from_specs`].
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Topic name.
    pub name: &'static str,
    /// Domain.
    pub domain: Domain,
    /// Characteristic terms (space-separated phrases allowed).
    pub terms: &'static [&'static str],
    /// Names of prerequisite topics (must appear earlier in the spec list).
    pub prerequisites: &'static [&'static str],
    /// Relative topic size.
    pub weight: f64,
}

impl TopicCatalog {
    /// Creates an empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Looks up a topic by id.
    pub fn get(&self, id: TopicId) -> Option<&Topic> {
        self.topics.get(id.index())
    }

    /// Looks up a topic by exact name.
    pub fn by_name(&self, name: &str) -> Option<&Topic> {
        self.topics.iter().find(|t| t.name == name)
    }

    /// All topics.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }

    /// All topics of a domain.
    pub fn by_domain(&self, domain: Domain) -> Vec<&Topic> {
        self.topics.iter().filter(|t| t.domain == domain).collect()
    }

    /// Adds a topic, resolving prerequisite names against already-added
    /// topics.  Unknown prerequisite names are ignored.
    pub fn add(
        &mut self,
        name: &str,
        domain: Domain,
        terms: &[&str],
        prerequisites: &[&str],
        weight: f64,
    ) -> TopicId {
        let id = TopicId(self.topics.len() as u32);
        let prereq_ids = prerequisites
            .iter()
            .filter_map(|p| self.by_name(p).map(|t| t.id))
            .collect();
        self.topics.push(Topic {
            id,
            name: name.to_string(),
            domain,
            terms: terms.iter().map(|s| s.to_string()).collect(),
            prerequisites: prereq_ids,
            weight: weight.max(0.1),
        });
        id
    }

    /// Builds a catalogue from a spec list (prerequisites must reference
    /// earlier entries).
    pub fn from_specs(specs: &[TopicSpec]) -> Self {
        let mut catalog = TopicCatalog::new();
        for spec in specs {
            catalog.add(
                spec.name,
                spec.domain,
                spec.terms,
                spec.prerequisites,
                spec.weight,
            );
        }
        catalog
    }

    /// The transitive prerequisite closure of a topic (not including the
    /// topic itself), in breadth-first order.
    pub fn prerequisite_closure(&self, topic: TopicId) -> Vec<TopicId> {
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        if let Some(t) = self.get(topic) {
            queue.extend(t.prerequisites.iter().copied());
        }
        while let Some(p) = queue.pop_front() {
            if seen.insert(p) {
                out.push(p);
                if let Some(t) = self.get(p) {
                    queue.extend(t.prerequisites.iter().copied());
                }
            }
        }
        out
    }

    /// The default synthetic computer-science catalogue: a hand-written set
    /// of topics spread over the ten Table I domains, with prerequisite
    /// chains of depth up to 4 in the AI/NLP area (mirroring the paper's
    /// Fig. 9 "pretrained language model" case study).
    pub fn synthetic_default() -> Self {
        Self::from_specs(default_specs())
    }
}

/// The built-in topic specification list used by
/// [`TopicCatalog::synthetic_default`].
pub fn default_specs() -> &'static [TopicSpec] {
    use Domain::*;
    const SPECS: &[TopicSpec] = &[
        // --- Artificial Intelligence: a prerequisite chain ending in
        // pretrained language models (the Fig. 9 case study). ---
        TopicSpec {
            name: "statistical learning theory",
            domain: ArtificialIntelligence,
            terms: &[
                "statistical",
                "learning",
                "generalization",
                "risk",
                "bounds",
                "kernel",
                "margin",
                "support",
                "vector",
            ],
            prerequisites: &[],
            weight: 0.8,
        },
        TopicSpec {
            name: "neural networks",
            domain: ArtificialIntelligence,
            terms: &[
                "neural",
                "network",
                "backpropagation",
                "perceptron",
                "activation",
                "gradient",
                "hidden",
                "layer",
            ],
            prerequisites: &["statistical learning theory"],
            weight: 1.2,
        },
        TopicSpec {
            name: "word embeddings",
            domain: ArtificialIntelligence,
            terms: &[
                "word",
                "embedding",
                "distributed",
                "representation",
                "semantic",
                "vector",
                "corpus",
                "context",
            ],
            prerequisites: &["neural networks"],
            weight: 0.9,
        },
        TopicSpec {
            name: "sequence to sequence learning",
            domain: ArtificialIntelligence,
            terms: &[
                "sequence",
                "encoder",
                "decoder",
                "recurrent",
                "translation",
                "neural",
                "machine",
            ],
            prerequisites: &["neural networks", "word embeddings"],
            weight: 0.9,
        },
        TopicSpec {
            name: "attention mechanisms",
            domain: ArtificialIntelligence,
            terms: &[
                "attention",
                "transformer",
                "self",
                "alignment",
                "head",
                "encoder",
                "decoder",
            ],
            prerequisites: &["sequence to sequence learning"],
            weight: 1.0,
        },
        TopicSpec {
            name: "contextualized word representations",
            domain: ArtificialIntelligence,
            terms: &[
                "contextualized",
                "word",
                "representation",
                "embedding",
                "deep",
                "language",
                "bidirectional",
            ],
            prerequisites: &["word embeddings", "attention mechanisms"],
            weight: 0.8,
        },
        TopicSpec {
            name: "pretrained language models",
            domain: ArtificialIntelligence,
            terms: &[
                "pretrained",
                "language",
                "model",
                "transformer",
                "fine",
                "tuning",
                "bert",
                "text",
                "understanding",
            ],
            prerequisites: &[
                "attention mechanisms",
                "contextualized word representations",
            ],
            weight: 1.3,
        },
        TopicSpec {
            name: "hate speech detection",
            domain: ArtificialIntelligence,
            terms: &[
                "hate",
                "speech",
                "detection",
                "abusive",
                "language",
                "social",
                "media",
                "classifier",
                "twitter",
            ],
            prerequisites: &["word embeddings", "pretrained language models"],
            weight: 0.8,
        },
        TopicSpec {
            name: "image classification",
            domain: ArtificialIntelligence,
            terms: &[
                "image",
                "classification",
                "convolutional",
                "visual",
                "recognition",
                "object",
                "feature",
            ],
            prerequisites: &["neural networks"],
            weight: 1.1,
        },
        TopicSpec {
            name: "generative adversarial networks",
            domain: ArtificialIntelligence,
            terms: &[
                "generative",
                "adversarial",
                "network",
                "generator",
                "discriminator",
                "synthesis",
                "image",
            ],
            prerequisites: &["image classification"],
            weight: 0.9,
        },
        TopicSpec {
            name: "reinforcement learning",
            domain: ArtificialIntelligence,
            terms: &[
                "reinforcement",
                "learning",
                "policy",
                "reward",
                "agent",
                "value",
                "exploration",
                "markov",
            ],
            prerequisites: &["statistical learning theory", "neural networks"],
            weight: 1.0,
        },
        TopicSpec {
            name: "graph neural networks",
            domain: ArtificialIntelligence,
            terms: &[
                "graph",
                "neural",
                "network",
                "node",
                "message",
                "passing",
                "convolution",
                "embedding",
            ],
            prerequisites: &["neural networks", "word embeddings"],
            weight: 0.9,
        },
        TopicSpec {
            name: "knowledge graph embedding",
            domain: ArtificialIntelligence,
            terms: &[
                "knowledge",
                "graph",
                "embedding",
                "entity",
                "relation",
                "triple",
                "link",
                "prediction",
            ],
            prerequisites: &["graph neural networks", "word embeddings"],
            weight: 0.7,
        },
        TopicSpec {
            name: "question answering",
            domain: ArtificialIntelligence,
            terms: &[
                "question",
                "answering",
                "reading",
                "comprehension",
                "answer",
                "span",
                "passage",
            ],
            prerequisites: &["pretrained language models"],
            weight: 0.7,
        },
        TopicSpec {
            name: "machine translation",
            domain: ArtificialIntelligence,
            terms: &[
                "machine",
                "translation",
                "bilingual",
                "neural",
                "alignment",
                "bleu",
                "multilingual",
            ],
            prerequisites: &["sequence to sequence learning", "attention mechanisms"],
            weight: 0.8,
        },
        TopicSpec {
            name: "speech recognition",
            domain: ArtificialIntelligence,
            terms: &[
                "speech",
                "recognition",
                "acoustic",
                "phoneme",
                "audio",
                "transcription",
                "end",
            ],
            prerequisites: &["sequence to sequence learning"],
            weight: 0.7,
        },
        TopicSpec {
            name: "explainable artificial intelligence",
            domain: ArtificialIntelligence,
            terms: &[
                "explainable",
                "interpretability",
                "explanation",
                "saliency",
                "attribution",
                "trust",
                "black",
                "box",
            ],
            prerequisites: &["neural networks", "image classification"],
            weight: 0.6,
        },
        TopicSpec {
            name: "federated learning",
            domain: ArtificialIntelligence,
            terms: &[
                "federated",
                "learning",
                "decentralized",
                "client",
                "aggregation",
                "privacy",
                "communication",
            ],
            prerequisites: &["neural networks", "distributed systems"],
            weight: 0.7,
        },
        // --- Databases / Data mining / IR. ---
        TopicSpec {
            name: "relational query optimization",
            domain: DatabaseDataMiningIr,
            terms: &[
                "query",
                "optimization",
                "relational",
                "join",
                "cardinality",
                "cost",
                "plan",
                "estimation",
            ],
            prerequisites: &[],
            weight: 0.8,
        },
        TopicSpec {
            name: "transaction processing",
            domain: DatabaseDataMiningIr,
            terms: &[
                "transaction",
                "concurrency",
                "control",
                "isolation",
                "locking",
                "serializable",
                "recovery",
            ],
            prerequisites: &["relational query optimization"],
            weight: 0.7,
        },
        TopicSpec {
            name: "distributed databases",
            domain: DatabaseDataMiningIr,
            terms: &[
                "distributed",
                "database",
                "partitioning",
                "replication",
                "consistency",
                "shard",
                "commit",
            ],
            prerequisites: &["transaction processing", "distributed systems"],
            weight: 0.8,
        },
        TopicSpec {
            name: "data stream processing",
            domain: DatabaseDataMiningIr,
            terms: &[
                "stream",
                "processing",
                "window",
                "continuous",
                "query",
                "real",
                "time",
                "event",
            ],
            prerequisites: &["relational query optimization"],
            weight: 0.6,
        },
        TopicSpec {
            name: "frequent pattern mining",
            domain: DatabaseDataMiningIr,
            terms: &[
                "frequent",
                "pattern",
                "mining",
                "itemset",
                "association",
                "rule",
                "support",
                "apriori",
            ],
            prerequisites: &[],
            weight: 0.7,
        },
        TopicSpec {
            name: "recommender systems",
            domain: DatabaseDataMiningIr,
            terms: &[
                "recommender",
                "recommendation",
                "collaborative",
                "filtering",
                "rating",
                "user",
                "item",
                "preference",
            ],
            prerequisites: &["frequent pattern mining", "word embeddings"],
            weight: 0.9,
        },
        TopicSpec {
            name: "learning to rank",
            domain: DatabaseDataMiningIr,
            terms: &[
                "learning",
                "rank",
                "ranking",
                "retrieval",
                "relevance",
                "listwise",
                "pairwise",
                "search",
            ],
            prerequisites: &["statistical learning theory", "recommender systems"],
            weight: 0.6,
        },
        TopicSpec {
            name: "entity resolution",
            domain: DatabaseDataMiningIr,
            terms: &[
                "entity",
                "resolution",
                "deduplication",
                "record",
                "linkage",
                "matching",
                "blocking",
            ],
            prerequisites: &["relational query optimization", "word embeddings"],
            weight: 0.5,
        },
        TopicSpec {
            name: "graph databases",
            domain: DatabaseDataMiningIr,
            terms: &[
                "graph",
                "database",
                "traversal",
                "property",
                "subgraph",
                "matching",
                "query",
                "storage",
            ],
            prerequisites: &["relational query optimization", "graph neural networks"],
            weight: 0.6,
        },
        TopicSpec {
            name: "citation recommendation",
            domain: DatabaseDataMiningIr,
            terms: &[
                "citation",
                "recommendation",
                "scholarly",
                "paper",
                "literature",
                "academic",
                "reference",
                "scientific",
            ],
            prerequisites: &["recommender systems", "learning to rank"],
            weight: 0.6,
        },
        // --- Computer networks. ---
        TopicSpec {
            name: "congestion control",
            domain: ComputerNetwork,
            terms: &[
                "congestion",
                "control",
                "tcp",
                "throughput",
                "latency",
                "bandwidth",
                "fairness",
            ],
            prerequisites: &[],
            weight: 0.7,
        },
        TopicSpec {
            name: "software defined networking",
            domain: ComputerNetwork,
            terms: &[
                "software",
                "defined",
                "networking",
                "controller",
                "openflow",
                "switch",
                "programmable",
            ],
            prerequisites: &["congestion control"],
            weight: 0.8,
        },
        TopicSpec {
            name: "network function virtualization",
            domain: ComputerNetwork,
            terms: &[
                "network",
                "function",
                "virtualization",
                "middlebox",
                "service",
                "chain",
                "orchestration",
            ],
            prerequisites: &["software defined networking"],
            weight: 0.6,
        },
        TopicSpec {
            name: "wireless sensor networks",
            domain: ComputerNetwork,
            terms: &[
                "wireless",
                "sensor",
                "network",
                "energy",
                "routing",
                "node",
                "coverage",
                "deployment",
            ],
            prerequisites: &["congestion control"],
            weight: 0.7,
        },
        TopicSpec {
            name: "internet of things",
            domain: ComputerNetwork,
            terms: &[
                "internet",
                "things",
                "iot",
                "device",
                "edge",
                "smart",
                "sensing",
                "connectivity",
            ],
            prerequisites: &["wireless sensor networks"],
            weight: 0.9,
        },
        // --- Security. ---
        TopicSpec {
            name: "applied cryptography",
            domain: Security,
            terms: &[
                "cryptography",
                "encryption",
                "key",
                "signature",
                "protocol",
                "cipher",
                "security",
            ],
            prerequisites: &[],
            weight: 0.8,
        },
        TopicSpec {
            name: "intrusion detection",
            domain: Security,
            terms: &[
                "intrusion",
                "detection",
                "anomaly",
                "network",
                "attack",
                "malicious",
                "traffic",
            ],
            prerequisites: &["applied cryptography", "statistical learning theory"],
            weight: 0.7,
        },
        TopicSpec {
            name: "malware analysis",
            domain: Security,
            terms: &[
                "malware",
                "analysis",
                "binary",
                "detection",
                "obfuscation",
                "dynamic",
                "static",
            ],
            prerequisites: &["intrusion detection"],
            weight: 0.6,
        },
        TopicSpec {
            name: "adversarial machine learning",
            domain: Security,
            terms: &[
                "adversarial",
                "attack",
                "robustness",
                "perturbation",
                "defense",
                "example",
                "model",
            ],
            prerequisites: &["image classification", "intrusion detection"],
            weight: 0.7,
        },
        TopicSpec {
            name: "blockchain consensus",
            domain: Security,
            terms: &[
                "blockchain",
                "consensus",
                "ledger",
                "smart",
                "contract",
                "byzantine",
                "proof",
            ],
            prerequisites: &["applied cryptography", "distributed systems"],
            weight: 0.8,
        },
        // --- Architecture / parallel / storage. ---
        TopicSpec {
            name: "distributed systems",
            domain: ArchitectureParallelStorage,
            terms: &[
                "distributed",
                "system",
                "consensus",
                "replication",
                "fault",
                "tolerance",
                "coordination",
            ],
            prerequisites: &[],
            weight: 1.0,
        },
        TopicSpec {
            name: "cache coherence",
            domain: ArchitectureParallelStorage,
            terms: &[
                "cache",
                "coherence",
                "memory",
                "protocol",
                "multiprocessor",
                "shared",
                "latency",
            ],
            prerequisites: &[],
            weight: 0.5,
        },
        TopicSpec {
            name: "key value storage",
            domain: ArchitectureParallelStorage,
            terms: &[
                "key",
                "value",
                "store",
                "storage",
                "lsm",
                "compaction",
                "flash",
                "persistent",
            ],
            prerequisites: &["distributed systems"],
            weight: 0.7,
        },
        TopicSpec {
            name: "gpu computing",
            domain: ArchitectureParallelStorage,
            terms: &[
                "gpu",
                "parallel",
                "accelerator",
                "kernel",
                "throughput",
                "cuda",
                "memory",
            ],
            prerequisites: &["cache coherence"],
            weight: 0.6,
        },
        TopicSpec {
            name: "serverless computing",
            domain: ArchitectureParallelStorage,
            terms: &[
                "serverless",
                "function",
                "cloud",
                "container",
                "cold",
                "start",
                "elastic",
            ],
            prerequisites: &["distributed systems"],
            weight: 0.6,
        },
        // --- Software engineering. ---
        TopicSpec {
            name: "program analysis",
            domain: SoftwareEngineering,
            terms: &[
                "program",
                "analysis",
                "static",
                "dataflow",
                "abstract",
                "interpretation",
                "soundness",
            ],
            prerequisites: &[],
            weight: 0.7,
        },
        TopicSpec {
            name: "automated testing",
            domain: SoftwareEngineering,
            terms: &[
                "testing",
                "test",
                "generation",
                "coverage",
                "fuzzing",
                "mutation",
                "oracle",
            ],
            prerequisites: &["program analysis"],
            weight: 0.7,
        },
        TopicSpec {
            name: "code representation learning",
            domain: SoftwareEngineering,
            terms: &[
                "code",
                "representation",
                "learning",
                "source",
                "embedding",
                "program",
                "neural",
            ],
            prerequisites: &["program analysis", "pretrained language models"],
            weight: 0.6,
        },
        TopicSpec {
            name: "software defect prediction",
            domain: SoftwareEngineering,
            terms: &[
                "defect",
                "prediction",
                "bug",
                "software",
                "metric",
                "quality",
                "fault",
            ],
            prerequisites: &["automated testing", "statistical learning theory"],
            weight: 0.5,
        },
        // --- Theory. ---
        TopicSpec {
            name: "approximation algorithms",
            domain: Theory,
            terms: &[
                "approximation",
                "algorithm",
                "hardness",
                "ratio",
                "optimization",
                "combinatorial",
                "np",
            ],
            prerequisites: &[],
            weight: 0.6,
        },
        TopicSpec {
            name: "graph algorithms",
            domain: Theory,
            terms: &[
                "graph",
                "algorithm",
                "shortest",
                "path",
                "spanning",
                "tree",
                "flow",
                "matching",
            ],
            prerequisites: &["approximation algorithms"],
            weight: 0.7,
        },
        TopicSpec {
            name: "sublinear algorithms",
            domain: Theory,
            terms: &[
                "sublinear",
                "streaming",
                "sketch",
                "sampling",
                "property",
                "testing",
                "estimation",
            ],
            prerequisites: &["approximation algorithms"],
            weight: 0.4,
        },
        // --- Graphics / multimedia. ---
        TopicSpec {
            name: "neural rendering",
            domain: GraphicsMultimedia,
            terms: &[
                "neural",
                "rendering",
                "radiance",
                "field",
                "view",
                "synthesis",
                "scene",
                "3d",
            ],
            prerequisites: &["image classification", "generative adversarial networks"],
            weight: 0.6,
        },
        TopicSpec {
            name: "video understanding",
            domain: GraphicsMultimedia,
            terms: &[
                "video",
                "understanding",
                "action",
                "recognition",
                "temporal",
                "frame",
                "clip",
            ],
            prerequisites: &["image classification"],
            weight: 0.6,
        },
        // --- HCI. ---
        TopicSpec {
            name: "activity recognition",
            domain: HumanComputerInteraction,
            terms: &[
                "activity",
                "recognition",
                "wearable",
                "sensor",
                "human",
                "motion",
                "accelerometer",
            ],
            prerequisites: &["statistical learning theory", "internet of things"],
            weight: 0.5,
        },
        TopicSpec {
            name: "conversational agents",
            domain: HumanComputerInteraction,
            terms: &[
                "conversational",
                "agent",
                "dialogue",
                "chatbot",
                "user",
                "interaction",
                "response",
            ],
            prerequisites: &["pretrained language models", "question answering"],
            weight: 0.6,
        },
        // --- Interdisciplinary. ---
        TopicSpec {
            name: "computational biology sequence models",
            domain: Interdisciplinary,
            terms: &[
                "protein",
                "sequence",
                "genomic",
                "biological",
                "structure",
                "prediction",
                "alignment",
            ],
            prerequisites: &[
                "sequence to sequence learning",
                "pretrained language models",
            ],
            weight: 0.6,
        },
        TopicSpec {
            name: "smart grid analytics",
            domain: Interdisciplinary,
            terms: &[
                "smart",
                "grid",
                "energy",
                "load",
                "forecasting",
                "power",
                "demand",
            ],
            prerequisites: &["data stream processing", "statistical learning theory"],
            weight: 0.5,
        },
        TopicSpec {
            name: "autonomous driving perception",
            domain: Interdisciplinary,
            terms: &[
                "autonomous",
                "driving",
                "perception",
                "lidar",
                "vehicle",
                "detection",
                "planning",
            ],
            prerequisites: &["image classification", "reinforcement learning"],
            weight: 0.7,
        },
    ];
    SPECS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_is_nontrivial() {
        let c = TopicCatalog::synthetic_default();
        assert!(c.len() >= 50, "expected a rich catalogue, got {}", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn every_domain_is_represented() {
        let c = TopicCatalog::synthetic_default();
        for d in Domain::RANKED {
            assert!(!c.by_domain(d).is_empty(), "domain {d:?} has no topics");
        }
    }

    #[test]
    fn prerequisites_resolve_to_earlier_topics() {
        let c = TopicCatalog::synthetic_default();
        for t in c.iter() {
            for &p in &t.prerequisites {
                assert!(
                    p.index() < t.id.index(),
                    "{} has a forward prerequisite",
                    t.name
                );
            }
        }
    }

    #[test]
    fn pretrained_language_models_has_a_deep_chain() {
        let c = TopicCatalog::synthetic_default();
        let plm = c.by_name("pretrained language models").unwrap();
        let closure = c.prerequisite_closure(plm.id);
        assert!(closure.len() >= 4, "closure too small: {}", closure.len());
        let names: Vec<_> = closure
            .iter()
            .map(|&id| c.get(id).unwrap().name.as_str())
            .collect();
        assert!(names.contains(&"attention mechanisms"));
        assert!(names.contains(&"neural networks"));
    }

    #[test]
    fn closure_of_root_topic_is_empty() {
        let c = TopicCatalog::synthetic_default();
        let root = c.by_name("statistical learning theory").unwrap();
        assert!(c.prerequisite_closure(root.id).is_empty());
    }

    #[test]
    fn unknown_prerequisites_are_ignored() {
        let mut c = TopicCatalog::new();
        let id = c.add(
            "lonely topic",
            Domain::Theory,
            &["alpha"],
            &["does not exist"],
            1.0,
        );
        assert!(c.get(id).unwrap().prerequisites.is_empty());
    }

    #[test]
    fn by_name_and_get_agree() {
        let c = TopicCatalog::synthetic_default();
        let t = c.by_name("graph databases").unwrap();
        assert_eq!(c.get(t.id).unwrap().name, "graph databases");
        assert!(c.by_name("nonexistent topic").is_none());
    }

    #[test]
    fn weights_are_positive() {
        let c = TopicCatalog::synthetic_default();
        assert!(c.iter().all(|t| t.weight > 0.0));
    }

    #[test]
    fn domain_names_match_table_one() {
        assert_eq!(
            Domain::ArtificialIntelligence.name(),
            "Artificial Intelligence"
        );
        assert_eq!(Domain::Uncertain.name(), "Uncertain Topics");
        assert_eq!(Domain::RANKED.len(), 10);
    }

    #[test]
    fn terms_are_nonempty_for_all_topics() {
        let c = TopicCatalog::synthetic_default();
        assert!(c.iter().all(|t| t.terms.len() >= 5));
    }
}
