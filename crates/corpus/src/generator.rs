//! Synthetic corpus generation.
//!
//! This is the stand-in for S2ORC plus the crawled survey collection (see
//! DESIGN.md): a deterministic generator that produces a computer-science
//! corpus whose *structure* matches what the paper's method relies on —
//! power-law citation counts, temporally consistent citation edges, topical
//! clustering, prerequisite chains, and surveys whose reference lists mix
//! directly-on-topic papers with prerequisite papers from other topics.
//!
//! The entry point is [`generate`]; its behaviour is controlled by
//! [`CorpusConfig`].  Generation is fully deterministic given the seed.

use crate::citation::{Candidate, CitationSampler, PoolWeights, Reference};
use crate::paper::{Paper, PaperId, PaperKind};
use crate::pipeline::{self, PipelineConfig};
use crate::store::Corpus;
use crate::topic::{TopicCatalog, TopicId};
use crate::venue::{VenueId, VenueTable, VenueTier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// RNG seed; the whole corpus is a pure function of the configuration.
    pub seed: u64,
    /// Base number of research papers per topic (scaled by each topic's
    /// weight).
    pub papers_per_topic: usize,
    /// Number of surveys generated per eligible topic.
    pub surveys_per_topic: usize,
    /// Minimum number of research papers a topic needs before surveys of it
    /// are generated.
    pub min_topic_papers_for_survey: usize,
    /// First publication year of the corpus.
    pub year_start: u16,
    /// Last publication year of the corpus (the paper's reference year is
    /// 2020).
    pub year_end: u16,
    /// Minimum reference-list length of a research paper.
    pub min_references: usize,
    /// Maximum reference-list length of a research paper.
    pub max_references: usize,
    /// Minimum reference-list length of a survey.
    pub min_survey_references: usize,
    /// Maximum reference-list length of a survey.
    pub max_survey_references: usize,
    /// Fraction of surveys given a pipeline-visible defect (unparseable PDF,
    /// out-of-range page count, duplicated title), mirroring the attrition
    /// from 41k collected surveys to 9.3k kept ones.
    pub survey_defect_rate: f64,
    /// Probability that a later same-topic research paper cites a survey.
    pub survey_citation_rate: f64,
    /// Relative sizes of the same-topic / prerequisite / background citation
    /// pools.
    pub pool_weights: PoolWeights,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5EED_CAFE,
            papers_per_topic: 120,
            surveys_per_topic: 2,
            min_topic_papers_for_survey: 20,
            year_start: 1990,
            year_end: 2020,
            min_references: 8,
            max_references: 25,
            min_survey_references: 30,
            max_survey_references: 70,
            survey_defect_rate: 0.12,
            survey_citation_rate: 0.12,
            pool_weights: PoolWeights::default(),
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit/integration tests: a few hundred papers
    /// that generate in milliseconds while preserving all structural
    /// properties.
    pub fn small() -> Self {
        CorpusConfig {
            papers_per_topic: 28,
            surveys_per_topic: 1,
            min_topic_papers_for_survey: 10,
            min_references: 5,
            max_references: 12,
            min_survey_references: 15,
            max_survey_references: 30,
            ..Default::default()
        }
    }

    /// A medium configuration for benchmarks (a few thousand papers).
    pub fn medium() -> Self {
        CorpusConfig {
            papers_per_topic: 70,
            ..Default::default()
        }
    }
}

/// Generic academic filler vocabulary mixed into titles and abstracts.
const FILLER_TERMS: &[&str] = &[
    "analysis",
    "framework",
    "evaluation",
    "empirical",
    "scalable",
    "robust",
    "efficient",
    "model",
    "system",
    "approach",
    "benchmark",
    "large",
    "scale",
    "improved",
    "unified",
    "adaptive",
    "hierarchical",
    "structured",
    "automatic",
    "joint",
];

const TITLE_PATTERNS: usize = 6;
const SURVEY_TITLE_PATTERNS: usize = 5;

#[derive(Debug, Clone)]
struct PaperPlan {
    topic: TopicId,
    year: u16,
    kind: PaperKind,
}

fn topic_depths(topics: &TopicCatalog) -> Vec<usize> {
    let mut depth = vec![0usize; topics.len()];
    for t in topics.iter() {
        let d = t
            .prerequisites
            .iter()
            .map(|p| depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[t.id.index()] = d;
    }
    depth
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn sample_terms(rng: &mut StdRng, terms: &[String], count: usize) -> Vec<String> {
    let mut pool: Vec<&String> = terms.iter().collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count.min(pool.len()) {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i).clone());
    }
    out
}

fn research_title(rng: &mut StdRng, topic_terms: &[String]) -> String {
    let t = sample_terms(rng, topic_terms, 4);
    let filler = *pick(rng, FILLER_TERMS);
    let get = |i: usize| t.get(i).cloned().unwrap_or_else(|| filler.to_string());
    match rng.gen_range(0..TITLE_PATTERNS) {
        0 => format!("{} {} for {} {}", get(0), get(1), get(2), get(3)),
        1 => format!("Learning {} {} with {} models", get(0), get(1), get(2)),
        2 => format!("An {filler} {} approach to {} {}", get(0), get(1), get(2)),
        3 => format!("{} {}: a {filler} {} study", get(0), get(1), get(2)),
        4 => format!("Towards {filler} {} {} via {}", get(0), get(1), get(2)),
        _ => format!("{} aware {} {} {}", get(0), get(1), get(2), filler),
    }
}

fn survey_title(rng: &mut StdRng, topic_name: &str) -> String {
    match rng.gen_range(0..SURVEY_TITLE_PATTERNS) {
        0 => format!("A survey on {topic_name}"),
        1 => format!("{topic_name}: a survey"),
        2 => format!("A comprehensive survey of {topic_name}"),
        3 => format!("{topic_name}: a review of recent progress"),
        _ => format!("A survey of {topic_name} techniques and applications"),
    }
}

fn abstract_text(
    rng: &mut StdRng,
    topic_terms: &[String],
    prerequisite_terms: &[String],
    words: usize,
) -> String {
    let mut out = Vec::with_capacity(words);
    for _ in 0..words {
        let roll: f64 = rng.gen();
        if roll < 0.55 && !topic_terms.is_empty() {
            out.push(pick(rng, topic_terms).clone());
        } else if roll < 0.75 && !prerequisite_terms.is_empty() {
            out.push(pick(rng, prerequisite_terms).clone());
        } else {
            out.push((*pick(rng, FILLER_TERMS)).to_string());
        }
    }
    out.join(" ")
}

fn sample_venue(rng: &mut StdRng, venues: &VenueTable) -> VenueId {
    let roll: f64 = rng.gen();
    let tier = if roll < 0.20 {
        VenueTier::A
    } else if roll < 0.55 {
        VenueTier::B
    } else if roll < 0.85 {
        VenueTier::C
    } else {
        VenueTier::Unranked
    };
    let pool = venues.by_tier(tier);
    if pool.is_empty() {
        VenueId(0)
    } else {
        *pick(rng, &pool)
    }
}

/// Generates a corpus according to `config`, including running the dataset
/// construction pipeline so that the returned corpus already carries its
/// SurveyBank benchmark.
pub fn generate(config: &CorpusConfig) -> Corpus {
    let topics = TopicCatalog::synthetic_default();
    let venues = VenueTable::synthetic_default();
    generate_with(config, topics, venues)
}

/// Generates a corpus with a caller-provided topic catalogue and venue table.
pub fn generate_with(config: &CorpusConfig, topics: TopicCatalog, venues: VenueTable) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let depths = topic_depths(&topics);

    // ------------------------------------------------------------------
    // Plan papers: how many per topic, which years, which are surveys.
    // ------------------------------------------------------------------
    let mut plans: Vec<PaperPlan> = Vec::new();
    let mut topic_paper_counts = vec![0usize; topics.len()];
    for topic in topics.iter() {
        let count = ((config.papers_per_topic as f64) * topic.weight)
            .round()
            .max(3.0) as usize;
        topic_paper_counts[topic.id.index()] = count;
        let start_year = config.year_start + (depths[topic.id.index()] as u16 * 3).min(15);
        let span = config.year_end.saturating_sub(start_year).max(1);
        for _ in 0..count {
            let u: f64 = rng.gen();
            // Skew publication years toward the recent end (Fig. 4b).
            let year = start_year + (f64::from(span) * u.powf(0.55)) as u16;
            plans.push(PaperPlan {
                topic: topic.id,
                year,
                kind: PaperKind::Research,
            });
        }
        if count >= config.min_topic_papers_for_survey {
            for _ in 0..config.surveys_per_topic {
                let earliest = (start_year + 5).min(config.year_end);
                let latest_span = config.year_end.saturating_sub(earliest).max(1);
                let year = config.year_end - rng.gen_range(0..latest_span.min(7));
                let year = year.max(earliest);
                plans.push(PaperPlan {
                    topic: topic.id,
                    year,
                    kind: PaperKind::Survey,
                });
            }
        }
    }
    // Chronological order; ties broken by topic then kind for determinism.
    plans.sort_by_key(|p| (p.year, p.topic, p.kind == PaperKind::Survey));

    // ------------------------------------------------------------------
    // Materialise papers (titles, abstracts, venues, defects).
    // ------------------------------------------------------------------
    let mut papers: Vec<Paper> = Vec::with_capacity(plans.len());
    let mut survey_titles_by_topic: std::collections::HashMap<TopicId, Vec<String>> =
        std::collections::HashMap::new();
    for (i, plan) in plans.iter().enumerate() {
        let topic = topics.get(plan.topic).expect("planned topic exists");
        let prereq_terms: Vec<String> = topic
            .prerequisites
            .iter()
            .filter_map(|&p| topics.get(p))
            .flat_map(|t| t.terms.iter().cloned())
            .collect();
        let (title, pages, parse_ok) = match plan.kind {
            PaperKind::Research => (
                research_title(&mut rng, &topic.terms),
                rng.gen_range(6..=14),
                true,
            ),
            PaperKind::Survey => {
                let mut title = survey_title(&mut rng, &topic.name);
                let mut pages = rng.gen_range(12..=40);
                let mut parse_ok = true;
                if rng.gen::<f64>() < config.survey_defect_rate {
                    match rng.gen_range(0..4) {
                        0 => pages = rng.gen_range(101..=300), // thesis-length: filtered out
                        1 => pages = 1,                        // extended abstract: filtered out
                        2 => parse_ok = false,                 // GROBID/PyPDF2 failure
                        _ => {
                            // Duplicate of an earlier survey title on the same
                            // topic (falls back to an over-long document when
                            // it is the topic's first survey).
                            if let Some(prev) = survey_titles_by_topic
                                .get(&plan.topic)
                                .and_then(|v| v.first())
                            {
                                title = prev.clone();
                            } else {
                                pages = rng.gen_range(101..=200);
                            }
                        }
                    }
                }
                survey_titles_by_topic
                    .entry(plan.topic)
                    .or_default()
                    .push(title.clone());
                (title, pages, parse_ok)
            }
        };
        let abstract_words = match plan.kind {
            PaperKind::Research => rng.gen_range(25..45),
            PaperKind::Survey => rng.gen_range(40..70),
        };
        papers.push(Paper {
            id: PaperId::from_index(i),
            title,
            abstract_text: abstract_text(&mut rng, &topic.terms, &prereq_terms, abstract_words),
            year: plan.year,
            venue: sample_venue(&mut rng, &venues),
            topic: plan.topic,
            kind: plan.kind,
            pages,
            parse_ok,
        });
    }

    // ------------------------------------------------------------------
    // Wire citations in chronological (= id) order.
    // ------------------------------------------------------------------
    let mut references: Vec<Vec<Reference>> = vec![Vec::new(); papers.len()];
    let mut in_degree = vec![0u32; papers.len()];
    // Per-topic lists of already-published research papers (ids ascending).
    let mut topic_published: Vec<Vec<usize>> = vec![Vec::new(); topics.len()];
    // Per-topic list of already-published surveys (for survey citations).
    let mut topic_surveys: Vec<Vec<usize>> = vec![Vec::new(); topics.len()];

    for i in 0..papers.len() {
        let paper_topic = papers[i].topic;
        let topic = topics.get(paper_topic).expect("topic exists");
        let is_survey = papers[i].kind == PaperKind::Survey;

        // Candidate pools.
        let same_topic: Vec<Candidate> = topic_published[paper_topic.index()]
            .iter()
            .map(|&j| Candidate {
                paper: PaperId::from_index(j),
                weight: 1.0 + f64::from(in_degree[j]),
            })
            .collect();

        let closure = topics.prerequisite_closure(paper_topic);
        let mut prerequisite: Vec<Candidate> = Vec::new();
        for (hop, &pt) in closure.iter().enumerate() {
            let published = &topic_published[pt.index()];
            if published.is_empty() {
                continue;
            }
            // Foundational papers of a prerequisite topic = its earliest
            // third; they receive a strong boost so they accumulate the
            // citations a real foundational paper would.
            let foundation_cutoff = published.len().div_ceil(3);
            // Direct prerequisites matter more than transitive ones.
            let hop_decay = 1.0 / (1.0 + hop as f64 * 0.35);
            for (rank, &j) in published.iter().enumerate() {
                let foundational_boost = if rank < foundation_cutoff {
                    if is_survey {
                        4.0
                    } else {
                        3.0
                    }
                } else {
                    1.0
                };
                prerequisite.push(Candidate {
                    paper: PaperId::from_index(j),
                    weight: (1.0 + f64::from(in_degree[j])) * foundational_boost * hop_decay,
                });
            }
        }

        // A bounded random slice of everything already published serves as
        // the background pool.
        let mut background: Vec<Candidate> = Vec::new();
        if i > 0 {
            for _ in 0..60.min(i) {
                let j = rng.gen_range(0..i);
                background.push(Candidate {
                    paper: PaperId::from_index(j),
                    weight: 1.0,
                });
            }
        }

        let budget = if is_survey {
            rng.gen_range(config.min_survey_references..=config.max_survey_references)
        } else {
            rng.gen_range(config.min_references..=config.max_references)
        };

        let mut sampler = CitationSampler::new(&mut rng);
        let pool_weights = if is_survey {
            // Surveys lean a bit harder on their own topic but still pull in
            // prerequisite work (the behaviour Observation I is about).
            PoolWeights {
                same_topic: 0.66,
                prerequisite: 0.28,
                background: 0.06,
            }
        } else {
            config.pool_weights
        };
        let cited = sampler.sample_references(
            budget,
            pool_weights,
            &same_topic,
            &prerequisite,
            &background,
        );

        // Importance of each cited paper for occurrence counts: normalised
        // current citation count (well-cited papers are discussed at length).
        let max_in_degree = cited
            .iter()
            .map(|p| in_degree[p.index()])
            .max()
            .unwrap_or(0)
            .max(1);
        for cited_paper in cited {
            let occurrences = if is_survey {
                let importance =
                    f64::from(in_degree[cited_paper.index()]) / f64::from(max_in_degree);
                sampler.survey_occurrences(importance)
            } else {
                sampler.regular_occurrences()
            };
            references[i].push(Reference {
                cited: cited_paper,
                occurrences,
            });
            in_degree[cited_paper.index()] += 1;
        }

        // Later same-topic research papers occasionally cite earlier surveys.
        if !is_survey && !topic_surveys[paper_topic.index()].is_empty() {
            for &survey_idx in &topic_surveys[paper_topic.index()] {
                if rng.gen::<f64>() < config.survey_citation_rate {
                    let already = references[i].iter().any(|r| r.cited.index() == survey_idx);
                    if !already {
                        references[i].push(Reference {
                            cited: PaperId::from_index(survey_idx),
                            occurrences: 1,
                        });
                        in_degree[survey_idx] += 1;
                    }
                }
            }
        }

        // Register the paper as published.
        match papers[i].kind {
            PaperKind::Research => topic_published[paper_topic.index()].push(i),
            PaperKind::Survey => topic_surveys[paper_topic.index()].push(i),
        }
        let _ = topic; // topic metadata only needed for candidate pools above
    }

    let mut corpus = Corpus::assemble(papers, references, topics, venues);
    let bank = pipeline::run(
        &corpus,
        &PipelineConfig {
            seed: config.seed ^ 0x9E37_79B9,
            ..Default::default()
        },
    )
    .bank;
    corpus.set_survey_bank(bank);
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_graph::topo;

    fn small_corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 11,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusConfig {
            seed: 42,
            ..CorpusConfig::small()
        });
        let b = generate(&CorpusConfig {
            seed: 42,
            ..CorpusConfig::small()
        });
        assert_eq!(a.len(), b.len());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        assert_eq!(
            a.paper(PaperId(10)).unwrap().title,
            b.paper(PaperId(10)).unwrap().title
        );
        assert_eq!(a.survey_bank().len(), b.survey_bank().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusConfig {
            seed: 1,
            ..CorpusConfig::small()
        });
        let b = generate(&CorpusConfig {
            seed: 2,
            ..CorpusConfig::small()
        });
        // Same planning, different sampling: titles should differ somewhere.
        let differing = a
            .papers()
            .iter()
            .zip(b.papers().iter())
            .filter(|(x, y)| x.title != y.title)
            .count();
        assert!(differing > 0);
    }

    #[test]
    fn corpus_has_expected_scale() {
        let c = small_corpus();
        assert!(c.len() > 800, "corpus too small: {}", c.len());
        assert!(
            c.graph().edge_count() > 4_000,
            "too few edges: {}",
            c.graph().edge_count()
        );
        assert!(
            c.survey_bank().len() >= 20,
            "too few surveys: {}",
            c.survey_bank().len()
        );
    }

    #[test]
    fn citations_are_temporally_consistent() {
        let c = small_corpus();
        for (citing, cited) in c.graph().edges() {
            let cy = c.year(PaperId::from_node(citing));
            let ry = c.year(PaperId::from_node(cited));
            assert!(ry <= cy, "paper from {cy} cites paper from {ry}");
        }
    }

    #[test]
    fn citation_graph_is_a_dag() {
        let c = small_corpus();
        assert!(topo::is_dag(c.graph()));
    }

    #[test]
    fn citation_counts_are_skewed() {
        let c = small_corpus();
        let mut counts: Vec<usize> = c.papers().iter().map(|p| c.citation_count(p.id)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_decile: usize = counts.iter().take(counts.len() / 10).sum();
        // Preferential attachment: the top 10% of papers should hold a clearly
        // disproportionate share of the citations.
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "top decile holds only {top_decile}/{total} citations"
        );
    }

    #[test]
    fn surveys_reference_prerequisite_topics() {
        let c = small_corpus();
        let mut with_cross_topic = 0;
        for survey in c.survey_bank().iter() {
            let survey_topic = c.paper(survey.paper).unwrap().topic;
            let cross = survey
                .references
                .iter()
                .filter(|r| {
                    c.paper(r.paper)
                        .map(|p| p.topic != survey_topic)
                        .unwrap_or(false)
                })
                .count();
            if cross > 0 {
                with_cross_topic += 1;
            }
        }
        assert!(
            with_cross_topic * 2 > c.survey_bank().len(),
            "most surveys should cite prerequisite-topic papers ({with_cross_topic}/{})",
            c.survey_bank().len()
        );
    }

    #[test]
    fn survey_occurrence_counts_cover_all_levels() {
        let c = small_corpus();
        let mut saw_high = false;
        for survey in c.survey_bank().iter() {
            assert!(survey.references.iter().all(|r| r.occurrences >= 1));
            if survey.references.iter().any(|r| r.occurrences >= 3) {
                saw_high = true;
            }
        }
        assert!(
            saw_high,
            "no survey has references cited three or more times"
        );
    }

    #[test]
    fn some_surveys_get_cited() {
        let c = generate(&CorpusConfig {
            seed: 3,
            survey_citation_rate: 0.4,
            ..CorpusConfig::small()
        });
        let cited_surveys = c
            .survey_bank()
            .iter()
            .filter(|s| s.citation_count > 0)
            .count();
        assert!(cited_surveys > 0, "no surveys received citations");
    }

    #[test]
    fn research_titles_use_topic_vocabulary() {
        let c = small_corpus();
        let sample = c.research_papers()[0];
        let topic = c.topics().get(sample.topic).unwrap();
        let title_lower = sample.title.to_lowercase();
        let hits = topic
            .terms
            .iter()
            .filter(|t| title_lower.contains(t.as_str()))
            .count();
        assert!(
            hits >= 1,
            "title '{}' shares no vocabulary with its topic",
            sample.title
        );
    }

    #[test]
    fn survey_papers_exist_and_mostly_pass_filters() {
        let c = small_corpus();
        let all_surveys = c.survey_papers().len();
        let kept = c.survey_bank().len();
        assert!(kept <= all_surveys);
        assert!(
            kept * 3 >= all_surveys,
            "pipeline dropped too many surveys: {kept}/{all_surveys}"
        );
    }

    #[test]
    fn years_are_within_configured_range() {
        let c = small_corpus();
        for p in c.papers() {
            assert!(
                (1990..=2020).contains(&p.year),
                "year {} out of range",
                p.year
            );
        }
    }
}
