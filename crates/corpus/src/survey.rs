//! Survey records and ground-truth labels.
//!
//! In SurveyBank every survey contributes one evaluation sample: the key
//! phrases extracted from its title form the query, and its reference list —
//! stratified by how many times each reference is cited *inside* the survey's
//! text — forms the ground truth.  The paper defines three label sets
//! `V = {L1, L2, L3}` where `Li` contains the references cited at least `i`
//! times (Section II-B).

use crate::paper::PaperId;
use serde::{Deserialize, Serialize};

/// One reference of a survey, with its in-text occurrence count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyReference {
    /// The referenced paper.
    pub paper: PaperId,
    /// How many times the reference is cited inside the survey's text
    /// (at least 1).
    pub occurrences: u8,
}

/// The occurrence-count threshold identifying a ground-truth label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LabelLevel {
    /// References cited at least once (the full reference list), `L1`.
    AtLeastOne,
    /// References cited at least twice, `L2`.
    AtLeastTwo,
    /// References cited at least three times, `L3`.
    AtLeastThree,
}

impl LabelLevel {
    /// All levels in increasing strictness.
    pub const ALL: [LabelLevel; 3] = [
        LabelLevel::AtLeastOne,
        LabelLevel::AtLeastTwo,
        LabelLevel::AtLeastThree,
    ];

    /// The minimum occurrence count for the level.
    pub fn threshold(self) -> u8 {
        match self {
            LabelLevel::AtLeastOne => 1,
            LabelLevel::AtLeastTwo => 2,
            LabelLevel::AtLeastThree => 3,
        }
    }

    /// Short name used in reports ("#occ >= 1" style).
    pub fn name(self) -> &'static str {
        match self {
            LabelLevel::AtLeastOne => "#occurrences >= 1",
            LabelLevel::AtLeastTwo => "#occurrences >= 2",
            LabelLevel::AtLeastThree => "#occurrences >= 3",
        }
    }
}

/// A survey together with its RPG evaluation sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Survey {
    /// The survey's own paper id.
    pub paper: PaperId,
    /// Key phrases extracted from the survey title (the query terms).
    pub key_phrases: Vec<String>,
    /// The query string (key phrases joined by a space), as fed to engines.
    pub query: String,
    /// The survey's reference list with in-text occurrence counts.
    pub references: Vec<SurveyReference>,
    /// Publication year of the survey (used to restrict candidate papers and
    /// to compute the selection score of Section II-A).
    pub year: u16,
    /// Number of papers citing the survey in the corpus.
    pub citation_count: u32,
}

impl Survey {
    /// The ground-truth paper list for a label level.
    pub fn label(&self, level: LabelLevel) -> Vec<PaperId> {
        let threshold = level.threshold();
        self.references
            .iter()
            .filter(|r| r.occurrences >= threshold)
            .map(|r| r.paper)
            .collect()
    }

    /// Number of references.
    pub fn reference_count(&self) -> usize {
        self.references.len()
    }

    /// The selection score of Section II-A: `citation / (reference_year - year + 1)`
    /// with the paper's 2020 reference year.
    pub fn selection_score(&self, reference_year: u16) -> f64 {
        let age = f64::from(reference_year.saturating_sub(self.year)) + 1.0;
        f64::from(self.citation_count) / age
    }

    /// The in-text occurrence count of a reference, 0 if not referenced.
    pub fn occurrences_of(&self, paper: PaperId) -> u8 {
        self.references
            .iter()
            .find(|r| r.paper == paper)
            .map(|r| r.occurrences)
            .unwrap_or(0)
    }
}

/// The full SurveyBank benchmark: the surveys that survived the
/// dataset-construction pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SurveyBank {
    /// All surveys, in paper-id order.
    pub surveys: Vec<Survey>,
}

impl SurveyBank {
    /// Number of surveys in the benchmark.
    pub fn len(&self) -> usize {
        self.surveys.len()
    }

    /// Whether the benchmark is empty.
    pub fn is_empty(&self) -> bool {
        self.surveys.is_empty()
    }

    /// Iterates over the surveys.
    pub fn iter(&self) -> impl Iterator<Item = &Survey> {
        self.surveys.iter()
    }

    /// Looks up the survey whose own paper id is `paper`.
    pub fn by_paper(&self, paper: PaperId) -> Option<&Survey> {
        self.surveys.iter().find(|s| s.paper == paper)
    }

    /// The subset of surveys with the highest selection score (Section II-A
    /// uses such a subset for the observation study); returns up to `count`
    /// surveys sorted by descending score.
    pub fn top_by_score(&self, count: usize, reference_year: u16) -> Vec<&Survey> {
        let mut sorted: Vec<&Survey> = self.surveys.iter().collect();
        sorted.sort_by(|a, b| {
            b.selection_score(reference_year)
                .partial_cmp(&a.selection_score(reference_year))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.paper.cmp(&b.paper))
        });
        sorted.truncate(count);
        sorted
    }

    /// Average number of references per survey.
    pub fn average_reference_count(&self) -> f64 {
        if self.surveys.is_empty() {
            return 0.0;
        }
        let total: usize = self.surveys.iter().map(Survey::reference_count).sum();
        total as f64 / self.surveys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Survey {
        Survey {
            paper: PaperId(100),
            key_phrases: vec![
                "hate speech detection".into(),
                "natural language processing".into(),
            ],
            query: "hate speech detection natural language processing".into(),
            references: vec![
                SurveyReference {
                    paper: PaperId(1),
                    occurrences: 1,
                },
                SurveyReference {
                    paper: PaperId(2),
                    occurrences: 2,
                },
                SurveyReference {
                    paper: PaperId(3),
                    occurrences: 3,
                },
                SurveyReference {
                    paper: PaperId(4),
                    occurrences: 5,
                },
            ],
            year: 2017,
            citation_count: 120,
        }
    }

    #[test]
    fn labels_are_nested_by_threshold() {
        let s = sample();
        let l1 = s.label(LabelLevel::AtLeastOne);
        let l2 = s.label(LabelLevel::AtLeastTwo);
        let l3 = s.label(LabelLevel::AtLeastThree);
        assert_eq!(l1.len(), 4);
        assert_eq!(l2.len(), 3);
        assert_eq!(l3.len(), 2);
        for p in &l3 {
            assert!(l2.contains(p));
        }
        for p in &l2 {
            assert!(l1.contains(p));
        }
    }

    #[test]
    fn selection_score_matches_formula() {
        let s = sample();
        // citation 120, 2020 - 2017 + 1 = 4.
        assert!((s.selection_score(2020) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn occurrences_lookup() {
        let s = sample();
        assert_eq!(s.occurrences_of(PaperId(4)), 5);
        assert_eq!(s.occurrences_of(PaperId(99)), 0);
    }

    #[test]
    fn label_level_metadata() {
        assert_eq!(LabelLevel::AtLeastOne.threshold(), 1);
        assert_eq!(LabelLevel::AtLeastThree.threshold(), 3);
        assert_eq!(LabelLevel::ALL.len(), 3);
        assert!(LabelLevel::AtLeastTwo.name().contains(">= 2"));
    }

    #[test]
    fn bank_lookup_and_scores() {
        let mut other = sample();
        other.paper = PaperId(200);
        other.citation_count = 10;
        other.year = 2019;
        let bank = SurveyBank {
            surveys: vec![sample(), other],
        };
        assert_eq!(bank.len(), 2);
        assert!(bank.by_paper(PaperId(200)).is_some());
        assert!(bank.by_paper(PaperId(42)).is_none());
        let top = bank.top_by_score(1, 2020);
        assert_eq!(top[0].paper, PaperId(100));
        assert!((bank.average_reference_count() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bank_behaves() {
        let bank = SurveyBank::default();
        assert!(bank.is_empty());
        assert_eq!(bank.average_reference_count(), 0.0);
        assert!(bank.top_by_score(5, 2020).is_empty());
    }
}
