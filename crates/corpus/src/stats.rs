//! Corpus and SurveyBank statistics (Fig. 4 and Table I of the paper).
//!
//! Three distributions are reported for the surveys in SurveyBank:
//!
//! * Fig. 4(a) — distribution of each survey's *citation count* (how often
//!   the survey itself is cited), bucketed `0-5, 5-10, 10-100, 100-500,
//!   500-1000, 1000-2000, 2000+`;
//! * Fig. 4(b) — distribution of publication years, bucketed in five-year
//!   bins from 1980 (with a catch-all early bin);
//! * Fig. 4(c) — distribution of reference-list lengths, bucketed in steps of
//!   50;
//!
//! plus Table I — the number of surveys per CCF domain, with an "uncertain"
//! bucket for surveys published at unranked venues.

use crate::store::Corpus;
use crate::survey::SurveyBank;
use crate::topic::Domain;
use crate::venue::VenueTier;
use serde::{Deserialize, Serialize};

/// A labelled histogram bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Human-readable bucket label (e.g. "10-100").
    pub label: String,
    /// Number of samples in the bucket.
    pub count: usize,
}

/// A labelled histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    /// The buckets in display order.
    pub buckets: Vec<Bucket>,
}

impl Histogram {
    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// The count of a bucket by label, 0 if absent.
    pub fn count_of(&self, label: &str) -> usize {
        self.buckets
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.count)
            .unwrap_or(0)
    }

    fn from_bounds(values: impl Iterator<Item = u32>, bounds: &[(u32, u32, &str)]) -> Histogram {
        let mut counts = vec![0usize; bounds.len()];
        for v in values {
            for (i, (lo, hi, _)) in bounds.iter().enumerate() {
                if v >= *lo && v < *hi {
                    counts[i] += 1;
                    break;
                }
            }
        }
        Histogram {
            buckets: bounds
                .iter()
                .zip(counts)
                .map(|((_, _, label), count)| Bucket {
                    label: (*label).to_string(),
                    count,
                })
                .collect(),
        }
    }
}

/// Fig. 4(a): distribution of the citation counts of the surveys in the bank.
pub fn survey_citation_distribution(bank: &SurveyBank) -> Histogram {
    const BOUNDS: &[(u32, u32, &str)] = &[
        (0, 5, "0-5"),
        (5, 10, "5-10"),
        (10, 100, "10-100"),
        (100, 500, "100-500"),
        (500, 1000, "500-1000"),
        (1000, 2000, "1000-2000"),
        (2000, u32::MAX, "2000+"),
    ];
    Histogram::from_bounds(bank.iter().map(|s| s.citation_count), BOUNDS)
}

/// Fig. 4(b): distribution of the publication years of the surveys.
pub fn survey_year_distribution(bank: &SurveyBank) -> Histogram {
    const BOUNDS: &[(u32, u32, &str)] = &[
        (0, 1980, "before 1980"),
        (1980, 1985, "1980-1985"),
        (1985, 1990, "1985-1990"),
        (1990, 1995, "1990-1995"),
        (1995, 2000, "1995-2000"),
        (2000, 2005, "2000-2005"),
        (2005, 2010, "2005-2010"),
        (2010, 2015, "2010-2015"),
        (2015, 2021, "2015-2020"),
    ];
    Histogram::from_bounds(bank.iter().map(|s| u32::from(s.year)), BOUNDS)
}

/// Fig. 4(c): distribution of the reference-list lengths of the surveys.
pub fn survey_reference_distribution(bank: &SurveyBank) -> Histogram {
    const BOUNDS: &[(u32, u32, &str)] = &[
        (0, 50, "0-50"),
        (50, 100, "50-100"),
        (100, 150, "100-150"),
        (150, 200, "150-200"),
        (200, 250, "200-250"),
        (250, 300, "250-300"),
        (300, u32::MAX, "300+"),
    ];
    Histogram::from_bounds(bank.iter().map(|s| s.reference_count() as u32), BOUNDS)
}

/// One row of Table I: a domain and how many surveys fall into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainCount {
    /// Domain name, as in Table I.
    pub domain: String,
    /// Number of surveys.
    pub count: usize,
    /// Share of the whole bank (0–1).
    pub share: f64,
}

/// Table I: the distribution of surveys over the ten CCF domains plus the
/// "uncertain" bucket.  A survey counts as *uncertain* when its venue is
/// unranked (the paper assigns "uncertain" to papers whose venue is missing
/// or not in the CCF collection).
pub fn topic_distribution(corpus: &Corpus, bank: &SurveyBank) -> Vec<DomainCount> {
    let mut counts: std::collections::HashMap<Domain, usize> = std::collections::HashMap::new();
    let total = bank.len().max(1);
    for survey in bank.iter() {
        let Some(paper) = corpus.paper(survey.paper) else {
            continue;
        };
        let venue_tier = corpus.venues().get(paper.venue).map(|v| v.tier);
        let domain = match venue_tier {
            Some(VenueTier::Unranked) | None => Domain::Uncertain,
            Some(_) => corpus
                .topics()
                .get(paper.topic)
                .map(|t| t.domain)
                .unwrap_or(Domain::Uncertain),
        };
        *counts.entry(domain).or_insert(0) += 1;
    }
    let mut rows: Vec<DomainCount> = Domain::RANKED
        .iter()
        .chain(std::iter::once(&Domain::Uncertain))
        .map(|&d| {
            let count = counts.get(&d).copied().unwrap_or(0);
            DomainCount {
                domain: d.name().to_string(),
                count,
                share: count as f64 / total as f64,
            }
        })
        .collect();
    // Table I orders ranked domains by descending paper count, with the
    // uncertain bucket last.
    let uncertain = rows.pop().expect("uncertain row present");
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.domain.cmp(&b.domain)));
    rows.push(uncertain);
    rows
}

/// Summary statistics of the whole corpus (used in README/EXPERIMENTS
/// reporting and by the Fig. 4 bench).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Total number of papers.
    pub papers: usize,
    /// Total number of citation edges.
    pub citations: usize,
    /// Number of surveys in the final SurveyBank.
    pub surveys: usize,
    /// Average references per survey.
    pub avg_survey_references: f64,
    /// Share of surveys published in the last 20 years of the corpus range.
    pub recent_survey_share: f64,
    /// Share of surveys that are never cited.
    pub uncited_survey_share: f64,
}

/// Computes the corpus summary.
pub fn summarize(corpus: &Corpus) -> CorpusSummary {
    let bank = corpus.survey_bank();
    let surveys = bank.len();
    let max_year = corpus.papers().iter().map(|p| p.year).max().unwrap_or(2020);
    let recent_cutoff = max_year.saturating_sub(20);
    let recent = bank.iter().filter(|s| s.year >= recent_cutoff).count();
    let uncited = bank.iter().filter(|s| s.citation_count == 0).count();
    CorpusSummary {
        papers: corpus.len(),
        citations: corpus.graph().edge_count(),
        surveys,
        avg_survey_references: bank.average_reference_count(),
        recent_survey_share: if surveys > 0 {
            recent as f64 / surveys as f64
        } else {
            0.0
        },
        uncited_survey_share: if surveys > 0 {
            uncited as f64 / surveys as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CorpusConfig};
    use crate::paper::PaperId;
    use crate::survey::{Survey, SurveyReference};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 9,
            ..CorpusConfig::small()
        })
    }

    fn survey(year: u16, citations: u32, refs: usize) -> Survey {
        Survey {
            paper: PaperId(0),
            key_phrases: vec!["x".into()],
            query: "x".into(),
            references: (1..=refs as u32)
                .map(|i| SurveyReference {
                    paper: PaperId(i),
                    occurrences: 1,
                })
                .collect(),
            year,
            citation_count: citations,
        }
    }

    #[test]
    fn histograms_cover_every_survey() {
        let c = corpus();
        let bank = c.survey_bank();
        assert_eq!(survey_citation_distribution(bank).total(), bank.len());
        assert_eq!(survey_year_distribution(bank).total(), bank.len());
        assert_eq!(survey_reference_distribution(bank).total(), bank.len());
    }

    #[test]
    fn citation_buckets_match_hand_built_bank() {
        let bank = SurveyBank {
            surveys: vec![
                survey(2019, 0, 10),
                survey(2018, 7, 10),
                survey(2015, 50, 10),
                survey(2010, 600, 10),
            ],
        };
        let h = survey_citation_distribution(&bank);
        assert_eq!(h.count_of("0-5"), 1);
        assert_eq!(h.count_of("5-10"), 1);
        assert_eq!(h.count_of("10-100"), 1);
        assert_eq!(h.count_of("500-1000"), 1);
        assert_eq!(h.count_of("2000+"), 0);
    }

    #[test]
    fn year_buckets_match_hand_built_bank() {
        let bank = SurveyBank {
            surveys: vec![survey(1975, 0, 5), survey(1999, 0, 5), survey(2018, 0, 5)],
        };
        let h = survey_year_distribution(&bank);
        assert_eq!(h.count_of("before 1980"), 1);
        assert_eq!(h.count_of("1995-2000"), 1);
        assert_eq!(h.count_of("2015-2020"), 1);
    }

    #[test]
    fn reference_buckets_match_hand_built_bank() {
        let bank = SurveyBank {
            surveys: vec![
                survey(2018, 0, 30),
                survey(2018, 0, 75),
                survey(2018, 0, 320),
            ],
        };
        let h = survey_reference_distribution(&bank);
        assert_eq!(h.count_of("0-50"), 1);
        assert_eq!(h.count_of("50-100"), 1);
        assert_eq!(h.count_of("300+"), 1);
    }

    #[test]
    fn topic_distribution_accounts_for_every_survey() {
        let c = corpus();
        let rows = topic_distribution(&c, c.survey_bank());
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, c.survey_bank().len());
        assert_eq!(rows.last().unwrap().domain, Domain::Uncertain.name());
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_surveys_are_recent() {
        let c = corpus();
        let summary = summarize(&c);
        assert!(
            summary.recent_survey_share > 0.7,
            "recent share {}",
            summary.recent_survey_share
        );
        assert_eq!(summary.surveys, c.survey_bank().len());
        assert!(summary.avg_survey_references >= 10.0);
        assert!(summary.papers > 0 && summary.citations > 0);
    }

    #[test]
    fn empty_bank_statistics_are_zero() {
        let bank = SurveyBank::default();
        assert_eq!(survey_citation_distribution(&bank).total(), 0);
        assert_eq!(survey_year_distribution(&bank).total(), 0);
        assert_eq!(survey_reference_distribution(&bank).total(), 0);
    }
}
