//! The SurveyBank dataset-construction pipeline (Fig. 3 of the paper).
//!
//! The paper builds SurveyBank in four stages: **collection** from two
//! sources (Google Scholar and S2ORC), **deduplication** by title,
//! **filtering** (unparseable PDFs and documents shorter than 2 or longer
//! than 100 pages are dropped), and **processing** (GROBID + `xmltodict` +
//! rule-based cleanup, keyphrase extraction from the title, ground-truth
//! labels from the reference list).
//!
//! The synthetic equivalent operates on the corpus' survey papers: the
//! collection stage emits "raw records" from two simulated sources with
//! overlap, deduplication collapses them (and drops surveys whose titles
//! collide), filtering applies the page/parse criteria, and processing runs
//! the TopicRank-style keyphrase extractor over the title and assembles the
//! [`Survey`] evaluation samples.

use crate::paper::{Paper, PaperId};
use crate::store::Corpus;
use crate::survey::{Survey, SurveyBank, SurveyReference};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpg_textindex::keyphrase::{extract_keyphrases, KeyphraseConfig};
use serde::{Deserialize, Serialize};

/// Which simulated source a raw record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The simulated Google Scholar crawl.
    ScholarCrawl,
    /// The simulated S2ORC dump.
    S2orcDump,
}

/// A raw collected record, before deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRecord {
    /// The underlying survey paper.
    pub paper: PaperId,
    /// Title as collected (used for deduplication).
    pub title: String,
    /// Where the record came from.
    pub source: Source,
}

/// Configuration of the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Seed for the collection-stage sampling.
    pub seed: u64,
    /// Probability that a survey is found by the simulated scholar crawl.
    pub scholar_coverage: f64,
    /// Probability that a survey is found in the simulated S2ORC dump.
    pub s2orc_coverage: f64,
    /// Minimum page count kept by the filter (exclusive lower bound is
    /// `min_pages - 1`; the paper keeps surveys of at least 2 pages).
    pub min_pages: u16,
    /// Maximum page count kept by the filter (the paper drops documents over
    /// 100 pages as probable theses).
    pub max_pages: u16,
    /// Keyphrase-extraction configuration applied to survey titles.
    pub keyphrases: KeyphraseConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0xA11CE,
            scholar_coverage: 0.85,
            s2orc_coverage: 0.75,
            min_pages: 2,
            max_pages: 100,
            keyphrases: KeyphraseConfig::default(),
        }
    }
}

/// Words that indicate "this phrase is about the document type, not the
/// research topic"; phrases made only of these are dropped from queries.
const SURVEY_INDICATOR_WORDS: &[&str] = &[
    "survey",
    "review",
    "overview",
    "tutorial",
    "comprehensive",
    "recent",
    "progress",
    "advances",
    "techniques",
    "applications",
];

/// Counts reported by each pipeline stage (the numbers the paper quotes when
/// describing the 41,194 → 9,321 attrition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Raw records emitted by the collection stage (both sources).
    pub collected_records: usize,
    /// Distinct surveys that were collected by at least one source.
    pub collected_surveys: usize,
    /// Surveys remaining after title deduplication.
    pub after_deduplication: usize,
    /// Surveys remaining after the page/parse filters.
    pub after_filtering: usize,
    /// Surveys with a usable query after processing (the final SurveyBank).
    pub processed: usize,
}

/// Output of [`run`]: the benchmark plus the per-stage report.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The surveys that survived every stage.
    pub bank: SurveyBank,
    /// Stage-by-stage attrition counts.
    pub report: PipelineReport,
}

/// Stage 1 — collection: emit raw records for every survey paper found by
/// each simulated source.  A survey missed by both sources never enters the
/// pipeline (mirroring crawl incompleteness).
pub fn collect(corpus: &Corpus, config: &PipelineConfig, rng: &mut StdRng) -> Vec<RawRecord> {
    let mut records = Vec::new();
    for paper in corpus.survey_papers() {
        if rng.gen::<f64>() < config.scholar_coverage {
            records.push(RawRecord {
                paper: paper.id,
                title: paper.title.clone(),
                source: Source::ScholarCrawl,
            });
        }
        if rng.gen::<f64>() < config.s2orc_coverage {
            records.push(RawRecord {
                paper: paper.id,
                title: paper.title.clone(),
                source: Source::S2orcDump,
            });
        }
    }
    records
}

fn normalize_title(title: &str) -> String {
    title
        .to_lowercase()
        .chars()
        .filter(|c| c.is_alphanumeric() || c.is_whitespace())
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Stage 2 — deduplication: collapse multiple records of the same paper and
/// drop later papers whose normalised title collides with an earlier one
/// ("we further check paper titles in order to make sure there is no
/// duplication").  Returns surveys in ascending paper-id order.
pub fn deduplicate(records: &[RawRecord]) -> Vec<PaperId> {
    let mut by_paper: Vec<(PaperId, &str)> = Vec::new();
    let mut seen_papers = std::collections::HashSet::new();
    for r in records {
        if seen_papers.insert(r.paper) {
            by_paper.push((r.paper, r.title.as_str()));
        }
    }
    by_paper.sort_by_key(|(p, _)| *p);

    let mut seen_titles = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (paper, title) in by_paper {
        if seen_titles.insert(normalize_title(title)) {
            out.push(paper);
        }
    }
    out
}

/// Stage 3 — filtering: drop surveys whose simulated PDF did not parse or
/// whose page count is outside `[min_pages, max_pages]`.
pub fn filter(corpus: &Corpus, surveys: &[PaperId], config: &PipelineConfig) -> Vec<PaperId> {
    surveys
        .iter()
        .copied()
        .filter(|&id| {
            let Some(paper) = corpus.paper(id) else {
                return false;
            };
            paper.parse_ok && paper.pages >= config.min_pages && paper.pages <= config.max_pages
        })
        .collect()
}

/// Extracts the query phrases for a survey title, dropping phrases that only
/// describe the document type ("survey", "review", ...).
pub fn query_phrases(title: &str, config: &KeyphraseConfig) -> Vec<String> {
    extract_keyphrases(title, config)
        .into_iter()
        .filter(|phrase| {
            !phrase
                .split_whitespace()
                .all(|w| SURVEY_INDICATOR_WORDS.contains(&w))
        })
        .collect()
}

/// Stage 4 — processing: build the [`Survey`] evaluation sample for each
/// surviving paper.  Surveys whose title yields no usable query phrase are
/// dropped (they cannot serve as an RPG sample).
pub fn process(corpus: &Corpus, surveys: &[PaperId], config: &PipelineConfig) -> SurveyBank {
    let mut out = Vec::with_capacity(surveys.len());
    for &id in surveys {
        let Some(paper) = corpus.paper(id) else {
            continue;
        };
        let key_phrases = query_phrases(&paper.title, &config.keyphrases);
        if key_phrases.is_empty() {
            continue;
        }
        let references: Vec<SurveyReference> = corpus
            .references_of(id)
            .iter()
            .map(|r| SurveyReference {
                paper: r.cited,
                occurrences: r.occurrences,
            })
            .collect();
        if references.is_empty() {
            continue;
        }
        let query = key_phrases.join(" ");
        out.push(Survey {
            paper: id,
            key_phrases,
            query,
            references,
            year: paper.year,
            citation_count: corpus.citation_count(id) as u32,
        });
    }
    SurveyBank { surveys: out }
}

/// Runs the full pipeline.
pub fn run(corpus: &Corpus, config: &PipelineConfig) -> PipelineOutput {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let records = collect(corpus, config, &mut rng);
    let collected_surveys = {
        let distinct: std::collections::HashSet<PaperId> =
            records.iter().map(|r| r.paper).collect();
        distinct.len()
    };
    let deduplicated = deduplicate(&records);
    let filtered = filter(corpus, &deduplicated, config);
    let bank = process(corpus, &filtered, config);
    let report = PipelineReport {
        collected_records: records.len(),
        collected_surveys,
        after_deduplication: deduplicated.len(),
        after_filtering: filtered.len(),
        processed: bank.len(),
    };
    PipelineOutput { bank, report }
}

/// Convenience used in documentation and examples: describes whether a paper
/// would pass the filter stage and why not otherwise.
pub fn filter_verdict(paper: &Paper, config: &PipelineConfig) -> Result<(), String> {
    if !paper.parse_ok {
        return Err("full text could not be parsed".to_string());
    }
    if paper.pages < config.min_pages {
        return Err(format!("too short ({} pages)", paper.pages));
    }
    if paper.pages > config.max_pages {
        return Err(format!(
            "too long ({} pages), likely a thesis or report",
            paper.pages
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 5,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn pipeline_attrition_is_monotone() {
        let c = corpus();
        let out = run(&c, &PipelineConfig::default());
        let r = out.report;
        assert!(r.collected_records >= r.collected_surveys);
        assert!(r.collected_surveys >= r.after_deduplication);
        assert!(r.after_deduplication >= r.after_filtering);
        assert!(r.after_filtering >= r.processed);
        assert_eq!(r.processed, out.bank.len());
        assert!(!out.bank.is_empty());
    }

    #[test]
    fn deduplication_drops_title_collisions() {
        let records = vec![
            RawRecord {
                paper: PaperId(1),
                title: "A Survey on X".into(),
                source: Source::ScholarCrawl,
            },
            RawRecord {
                paper: PaperId(1),
                title: "A Survey on X".into(),
                source: Source::S2orcDump,
            },
            RawRecord {
                paper: PaperId(2),
                title: "a survey on x!".into(),
                source: Source::S2orcDump,
            },
            RawRecord {
                paper: PaperId(3),
                title: "A different survey".into(),
                source: Source::ScholarCrawl,
            },
        ];
        let deduped = deduplicate(&records);
        assert_eq!(deduped, vec![PaperId(1), PaperId(3)]);
    }

    #[test]
    fn filter_applies_page_and_parse_criteria() {
        let c = corpus();
        let config = PipelineConfig::default();
        // Construct the verdicts directly from paper metadata.
        for paper in c.survey_papers() {
            let verdict = filter_verdict(paper, &config);
            let kept = filter(&c, &[paper.id], &config);
            assert_eq!(
                verdict.is_ok(),
                !kept.is_empty(),
                "inconsistent filter for {}",
                paper.id
            );
        }
    }

    #[test]
    fn processing_builds_queries_without_survey_words() {
        let c = corpus();
        let out = run(&c, &PipelineConfig::default());
        for survey in out.bank.iter() {
            assert!(!survey.query.is_empty());
            for phrase in &survey.key_phrases {
                assert!(
                    !phrase
                        .split_whitespace()
                        .all(|w| SURVEY_INDICATOR_WORDS.contains(&w)),
                    "query phrase '{phrase}' is only survey-indicator words"
                );
            }
            assert!(!survey.references.is_empty());
        }
    }

    #[test]
    fn query_phrases_keep_topic_and_drop_survey_markers() {
        let phrases = query_phrases(
            "A survey on hate speech detection",
            &KeyphraseConfig::default(),
        );
        let joined = phrases.join(" | ");
        assert!(joined.contains("hate speech detection"), "got {joined}");
        assert!(!phrases.iter().any(|p| p == "survey"));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let c = corpus();
        let a = run(&c, &PipelineConfig::default());
        let b = run(&c, &PipelineConfig::default());
        assert_eq!(a.report, b.report);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn zero_coverage_collects_nothing() {
        let c = corpus();
        let config = PipelineConfig {
            scholar_coverage: 0.0,
            s2orc_coverage: 0.0,
            ..Default::default()
        };
        let out = run(&c, &config);
        assert_eq!(out.report.collected_records, 0);
        assert!(out.bank.is_empty());
    }

    #[test]
    fn normalize_title_ignores_case_and_punctuation() {
        assert_eq!(
            normalize_title("A  Survey, on X!"),
            normalize_title("a survey on x")
        );
        assert_ne!(
            normalize_title("survey on x"),
            normalize_title("survey on y")
        );
    }
}
