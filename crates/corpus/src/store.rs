//! The assembled corpus: papers, reference lists, citation graph, and the
//! SurveyBank benchmark derived from it.
//!
//! [`Corpus`] is the object every downstream crate works against: the
//! simulated search engines index its papers, the RePaGer pipeline walks its
//! citation graph and reads its per-edge occurrence counts, and the
//! evaluation harness iterates its surveys.

use crate::citation::Reference;
use crate::paper::{Paper, PaperId};
use crate::survey::SurveyBank;
use crate::topic::TopicCatalog;
use crate::venue::VenueTable;
use rpg_graph::{CitationGraph, GraphBuilder, NodeId};
use serde::{Deserialize, Serialize};

/// A complete synthetic scholarly corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    papers: Vec<Paper>,
    references: Vec<Vec<Reference>>,
    graph: CitationGraph,
    topics: TopicCatalog,
    venues: VenueTable,
    survey_bank: SurveyBank,
}

impl Corpus {
    /// Assembles a corpus from papers and their reference lists, building the
    /// citation graph.  The survey bank starts empty; the dataset pipeline
    /// (see [`crate::pipeline`]) fills it in.
    ///
    /// # Panics
    ///
    /// Panics if `references.len() != papers.len()` or if any reference
    /// points outside the paper set — these are programming errors of the
    /// generator, not recoverable conditions.
    pub fn assemble(
        papers: Vec<Paper>,
        references: Vec<Vec<Reference>>,
        topics: TopicCatalog,
        venues: VenueTable,
    ) -> Self {
        assert_eq!(
            papers.len(),
            references.len(),
            "one reference list per paper"
        );
        let mut builder =
            GraphBuilder::with_edge_capacity(papers.len(), references.iter().map(Vec::len).sum());
        for (citing, refs) in references.iter().enumerate() {
            for r in refs {
                builder
                    .add_citation(NodeId::from_index(citing), r.cited.node())
                    .expect("generator produced an invalid citation edge");
            }
        }
        let graph = builder.build();
        Corpus {
            papers,
            references,
            graph,
            topics,
            venues,
            survey_bank: SurveyBank::default(),
        }
    }

    /// Reassembles a corpus from previously extracted parts (e.g. a decoded
    /// snapshot), including a pre-built citation graph, without re-running
    /// the graph builder.
    ///
    /// Unlike [`Corpus::assemble`] this validates instead of panicking,
    /// because the parts come from external bytes rather than the generator:
    /// paper ids must be dense and in order, every reference must stay in
    /// bounds, and the graph's node count and per-node reference lists must
    /// agree with `references` exactly.
    pub fn from_parts(
        papers: Vec<Paper>,
        references: Vec<Vec<Reference>>,
        graph: CitationGraph,
        topics: TopicCatalog,
        venues: VenueTable,
        survey_bank: SurveyBank,
    ) -> Result<Self, String> {
        if references.len() != papers.len() {
            return Err(format!(
                "{} reference lists for {} papers",
                references.len(),
                papers.len()
            ));
        }
        if graph.node_count() != papers.len() {
            return Err(format!(
                "graph has {} nodes for {} papers",
                graph.node_count(),
                papers.len()
            ));
        }
        for (i, paper) in papers.iter().enumerate() {
            if paper.id.index() != i {
                return Err(format!(
                    "paper ids are not dense: position {i} holds {:?}",
                    paper.id
                ));
            }
        }
        let mut cited = Vec::new();
        for (i, refs) in references.iter().enumerate() {
            cited.clear();
            cited.extend(refs.iter().map(|r| r.cited.node()));
            cited.sort_unstable();
            if cited.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("paper {i} references the same paper twice"));
            }
            // GraphBuilder emits sorted adjacency slices, so a sorted copy of
            // the reference list must match the graph's slice exactly.
            if cited != graph.references(NodeId::from_index(i)) {
                return Err(format!(
                    "graph adjacency of paper {i} does not match its reference list"
                ));
            }
        }
        Ok(Corpus {
            papers,
            references,
            graph,
            topics,
            venues,
            survey_bank,
        })
    }

    /// Installs the SurveyBank benchmark produced by the dataset pipeline.
    pub fn set_survey_bank(&mut self, bank: SurveyBank) {
        self.survey_bank = bank;
    }

    /// Number of papers.
    pub fn len(&self) -> usize {
        self.papers.len()
    }

    /// Whether the corpus has no papers.
    pub fn is_empty(&self) -> bool {
        self.papers.is_empty()
    }

    /// All papers in id order.
    pub fn papers(&self) -> &[Paper] {
        &self.papers
    }

    /// Looks up a paper.
    pub fn paper(&self, id: PaperId) -> Option<&Paper> {
        self.papers.get(id.index())
    }

    /// The citation graph over all papers (node ids equal paper ids).
    pub fn graph(&self) -> &CitationGraph {
        &self.graph
    }

    /// The topic catalogue.
    pub fn topics(&self) -> &TopicCatalog {
        &self.topics
    }

    /// The venue table.
    pub fn venues(&self) -> &VenueTable {
        &self.venues
    }

    /// The SurveyBank benchmark (empty until the pipeline has run).
    pub fn survey_bank(&self) -> &SurveyBank {
        &self.survey_bank
    }

    /// The reference list (with occurrence counts) of a paper.
    pub fn references_of(&self, id: PaperId) -> &[Reference] {
        self.references
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The in-text occurrence count `con(citing, cited)`; 0 if `citing` does
    /// not reference `cited`.
    pub fn occurrences(&self, citing: PaperId, cited: PaperId) -> u8 {
        self.references_of(citing)
            .iter()
            .find(|r| r.cited == cited)
            .map(|r| r.occurrences)
            .unwrap_or(0)
    }

    /// The symmetric relevance count used by Eq. (2): how many times `a`
    /// mentions `b` or `b` mentions `a` (at most one direction is non-zero in
    /// a temporally consistent corpus).
    pub fn connection_strength(&self, a: PaperId, b: PaperId) -> u8 {
        self.occurrences(a, b).max(self.occurrences(b, a))
    }

    /// Number of papers citing `id` (its citation count in the corpus).
    pub fn citation_count(&self, id: PaperId) -> usize {
        self.graph.in_degree(id.node())
    }

    /// The venue score of a paper (Eq. 3's `venue(i)` term).
    pub fn venue_score(&self, id: PaperId) -> f64 {
        match self.paper(id) {
            Some(p) => self.venues.venue_score(p.venue),
            None => 0.0,
        }
    }

    /// Publication year of a paper (0 if unknown).
    pub fn year(&self, id: PaperId) -> u16 {
        self.paper(id).map(|p| p.year).unwrap_or(0)
    }

    /// Whether the paper is a survey.
    pub fn is_survey(&self, id: PaperId) -> bool {
        self.paper(id).map(Paper::is_survey).unwrap_or(false)
    }

    /// All survey papers (whether or not they survived the pipeline filters).
    pub fn survey_papers(&self) -> Vec<&Paper> {
        self.papers.iter().filter(|p| p.is_survey()).collect()
    }

    /// All research (non-survey) papers.
    pub fn research_papers(&self) -> Vec<&Paper> {
        self.papers.iter().filter(|p| !p.is_survey()).collect()
    }

    /// Iterates over `(paper, title + abstract)` pairs, the input to the
    /// search-engine indexes.
    pub fn indexable_documents(&self) -> impl Iterator<Item = (PaperId, String)> + '_ {
        self.papers.iter().map(|p| (p.id, p.indexed_text()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperKind;
    use crate::venue::VenueTier;

    fn tiny_corpus() -> Corpus {
        let mut venues = VenueTable::new();
        let v = venues.add("Test venue", VenueTier::A, 0.8);
        let mut topics = TopicCatalog::new();
        let t = topics.add(
            "test topic",
            crate::topic::Domain::Theory,
            &["alpha", "beta"],
            &[],
            1.0,
        );
        let mk = |i: u32, year: u16, kind: PaperKind| Paper {
            id: PaperId(i),
            title: format!("paper {i} about alpha"),
            abstract_text: "alpha beta gamma".to_string(),
            year,
            venue: v,
            topic: t,
            kind,
            pages: 10,
            parse_ok: true,
        };
        let papers = vec![
            mk(0, 2000, PaperKind::Research),
            mk(1, 2005, PaperKind::Research),
            mk(2, 2010, PaperKind::Research),
            mk(3, 2015, PaperKind::Survey),
        ];
        let references = vec![
            vec![],
            vec![Reference {
                cited: PaperId(0),
                occurrences: 2,
            }],
            vec![
                Reference {
                    cited: PaperId(0),
                    occurrences: 1,
                },
                Reference {
                    cited: PaperId(1),
                    occurrences: 1,
                },
            ],
            vec![
                Reference {
                    cited: PaperId(0),
                    occurrences: 3,
                },
                Reference {
                    cited: PaperId(1),
                    occurrences: 2,
                },
                Reference {
                    cited: PaperId(2),
                    occurrences: 1,
                },
            ],
        ];
        Corpus::assemble(papers, references, topics, venues)
    }

    #[test]
    fn assembly_builds_matching_graph() {
        let c = tiny_corpus();
        assert_eq!(c.len(), 4);
        assert_eq!(c.graph().node_count(), 4);
        assert_eq!(c.graph().edge_count(), 6);
        assert!(c.graph().has_edge(NodeId(3), NodeId(2)));
        assert!(!c.graph().has_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    fn occurrence_lookup_matches_reference_lists() {
        let c = tiny_corpus();
        assert_eq!(c.occurrences(PaperId(3), PaperId(0)), 3);
        assert_eq!(c.occurrences(PaperId(0), PaperId(3)), 0);
        assert_eq!(c.connection_strength(PaperId(0), PaperId(3)), 3);
        assert_eq!(c.connection_strength(PaperId(3), PaperId(0)), 3);
        assert_eq!(c.occurrences(PaperId(1), PaperId(2)), 0);
    }

    #[test]
    fn citation_counts_come_from_the_graph() {
        let c = tiny_corpus();
        assert_eq!(c.citation_count(PaperId(0)), 3);
        assert_eq!(c.citation_count(PaperId(3)), 0);
    }

    #[test]
    fn paper_classification_helpers() {
        let c = tiny_corpus();
        assert!(c.is_survey(PaperId(3)));
        assert!(!c.is_survey(PaperId(0)));
        assert_eq!(c.survey_papers().len(), 1);
        assert_eq!(c.research_papers().len(), 3);
        assert_eq!(c.year(PaperId(2)), 2010);
        assert_eq!(c.year(PaperId(99)), 0);
        assert!(c.venue_score(PaperId(0)) > 0.5);
        assert_eq!(c.venue_score(PaperId(99)), 0.0);
    }

    #[test]
    fn indexable_documents_cover_all_papers() {
        let c = tiny_corpus();
        let docs: Vec<_> = c.indexable_documents().collect();
        assert_eq!(docs.len(), 4);
        assert!(docs[0].1.contains("alpha"));
    }

    #[test]
    fn survey_bank_starts_empty_and_can_be_installed() {
        let mut c = tiny_corpus();
        assert!(c.survey_bank().is_empty());
        c.set_survey_bank(SurveyBank::default());
        assert!(c.survey_bank().is_empty());
    }

    #[test]
    fn from_parts_round_trips_an_assembled_corpus() {
        let c = tiny_corpus();
        let rebuilt = Corpus::from_parts(
            c.papers().to_vec(),
            (0..c.len())
                .map(|i| c.references_of(PaperId(i as u32)).to_vec())
                .collect(),
            c.graph().clone(),
            c.topics().clone(),
            c.venues().clone(),
            c.survey_bank().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), c.len());
        assert_eq!(rebuilt.graph().edge_count(), c.graph().edge_count());
        assert_eq!(rebuilt.occurrences(PaperId(3), PaperId(0)), 3);
        assert_eq!(rebuilt.citation_count(PaperId(0)), 3);
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let c = tiny_corpus();
        let refs: Vec<Vec<Reference>> = (0..c.len())
            .map(|i| c.references_of(PaperId(i as u32)).to_vec())
            .collect();

        // Wrong number of reference lists.
        assert!(Corpus::from_parts(
            c.papers().to_vec(),
            vec![],
            c.graph().clone(),
            c.topics().clone(),
            c.venues().clone(),
            c.survey_bank().clone(),
        )
        .is_err());

        // Graph node count disagrees with the paper count.
        assert!(Corpus::from_parts(
            c.papers().to_vec(),
            refs.clone(),
            CitationGraph::empty(1),
            c.topics().clone(),
            c.venues().clone(),
            c.survey_bank().clone(),
        )
        .is_err());

        // Non-dense paper ids.
        let mut papers = c.papers().to_vec();
        papers[0].id = PaperId(9);
        assert!(Corpus::from_parts(
            papers,
            refs.clone(),
            c.graph().clone(),
            c.topics().clone(),
            c.venues().clone(),
            c.survey_bank().clone(),
        )
        .is_err());

        // Reference list that disagrees with the graph adjacency.
        let mut broken = refs;
        broken[0].push(Reference {
            cited: PaperId(1),
            occurrences: 1,
        });
        assert!(Corpus::from_parts(
            c.papers().to_vec(),
            broken,
            c.graph().clone(),
            c.topics().clone(),
            c.venues().clone(),
            c.survey_bank().clone(),
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "one reference list per paper")]
    fn mismatched_reference_lists_panic() {
        let c = tiny_corpus();
        let papers = c.papers().to_vec();
        let _ = Corpus::assemble(papers, vec![], TopicCatalog::new(), VenueTable::new());
    }
}
