//! Publication venues and venue scores.
//!
//! Eq. (3) of the paper mixes a PageRank score with a per-paper *venue score*
//! derived from the CCF venue ranking (three expert-assigned tiers) and the
//! AMiner influence score, averaged.  The real rankings cover ~700 venues;
//! this module provides a synthetic venue table with the same structure: each
//! venue has a CCF-style tier (A/B/C) and an AMiner-style influence score in
//! `[0, 1]`, and [`VenueTable::venue_score`] returns the average of the two
//! (with the tier mapped onto `[0, 1]`).

use serde::{Deserialize, Serialize};

/// A dense venue identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VenueId(pub u32);

impl VenueId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// CCF-style venue tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VenueTier {
    /// Top-tier venue (CCF A).
    A,
    /// Mid-tier venue (CCF B).
    B,
    /// Entry-tier venue (CCF C).
    C,
    /// Venue outside the ranked collection (workshops, arXiv-only, unknown).
    Unranked,
}

impl VenueTier {
    /// Maps the tier onto a `[0, 1]` score, mirroring the manual CCF levels.
    pub fn score(self) -> f64 {
        match self {
            VenueTier::A => 1.0,
            VenueTier::B => 0.7,
            VenueTier::C => 0.4,
            VenueTier::Unranked => 0.1,
        }
    }
}

/// A publication venue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Venue {
    /// Dense identifier.
    pub id: VenueId,
    /// Venue name (e.g. "ICDE", "Journal of Synthetic Databases").
    pub name: String,
    /// CCF-style tier.
    pub tier: VenueTier,
    /// AMiner-style influence score in `[0, 1]`.
    pub influence: f64,
}

/// The table of all venues known to the corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VenueTable {
    venues: Vec<Venue>,
}

impl VenueTable {
    /// Creates an empty venue table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the default synthetic venue collection: a fixed catalogue of
    /// venues across the three tiers plus an unranked bucket, enough for the
    /// generator to spread papers realistically.
    pub fn synthetic_default() -> Self {
        let mut table = VenueTable::new();
        let spec: &[(&str, VenueTier, f64)] = &[
            ("Synthetic Transactions on Databases", VenueTier::A, 0.95),
            (
                "Conference on Learning Representations (synthetic)",
                VenueTier::A,
                0.92,
            ),
            (
                "Synthetic Conference on Data Engineering",
                VenueTier::A,
                0.90,
            ),
            (
                "Annual Meeting on Computational Linguistics (synthetic)",
                VenueTier::A,
                0.88,
            ),
            (
                "Symposium on Theory of Computing (synthetic)",
                VenueTier::A,
                0.85,
            ),
            (
                "Synthetic Conference on Computer Vision",
                VenueTier::A,
                0.87,
            ),
            (
                "Journal of Machine Intelligence (synthetic)",
                VenueTier::B,
                0.70,
            ),
            (
                "Synthetic Conference on Information Retrieval",
                VenueTier::B,
                0.68,
            ),
            ("Synthetic Networking Conference", VenueTier::B, 0.64),
            (
                "Conference on Software Engineering Practice (synthetic)",
                VenueTier::B,
                0.62,
            ),
            (
                "Synthetic Security and Privacy Workshop Series",
                VenueTier::B,
                0.60,
            ),
            ("Synthetic Graphics Forum", VenueTier::B, 0.58),
            (
                "Regional Conference on Intelligent Systems",
                VenueTier::C,
                0.40,
            ),
            ("Synthetic Workshop on Emerging Topics", VenueTier::C, 0.35),
            ("Journal of Applied Computing Studies", VenueTier::C, 0.32),
            ("Student Symposium on Computing", VenueTier::C, 0.28),
            ("arXiv preprint (synthetic)", VenueTier::Unranked, 0.15),
            ("Unspecified venue", VenueTier::Unranked, 0.05),
        ];
        for (name, tier, influence) in spec {
            table.add(name, *tier, *influence);
        }
        table
    }

    /// Adds a venue and returns its id.
    pub fn add(&mut self, name: &str, tier: VenueTier, influence: f64) -> VenueId {
        let id = VenueId(self.venues.len() as u32);
        self.venues.push(Venue {
            id,
            name: name.to_string(),
            tier,
            influence: influence.clamp(0.0, 1.0),
        });
        id
    }

    /// Number of venues.
    pub fn len(&self) -> usize {
        self.venues.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.venues.is_empty()
    }

    /// Looks up a venue.
    pub fn get(&self, id: VenueId) -> Option<&Venue> {
        self.venues.get(id.index())
    }

    /// All venues.
    pub fn iter(&self) -> impl Iterator<Item = &Venue> {
        self.venues.iter()
    }

    /// Venues of a given tier.
    pub fn by_tier(&self, tier: VenueTier) -> Vec<VenueId> {
        self.venues
            .iter()
            .filter(|v| v.tier == tier)
            .map(|v| v.id)
            .collect()
    }

    /// The venue score used by Eq. (3): the average of the tier score (CCF
    /// proxy) and the influence score (AMiner proxy), in `[0, 1]`.  Unknown
    /// venues score as `Unranked`.
    pub fn venue_score(&self, id: VenueId) -> f64 {
        match self.get(id) {
            Some(v) => (v.tier.score() + v.influence) / 2.0,
            None => (VenueTier::Unranked.score() + 0.0) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_scores_are_ordered() {
        assert!(VenueTier::A.score() > VenueTier::B.score());
        assert!(VenueTier::B.score() > VenueTier::C.score());
        assert!(VenueTier::C.score() > VenueTier::Unranked.score());
    }

    #[test]
    fn synthetic_table_has_all_tiers() {
        let t = VenueTable::synthetic_default();
        assert!(t.len() >= 12);
        for tier in [
            VenueTier::A,
            VenueTier::B,
            VenueTier::C,
            VenueTier::Unranked,
        ] {
            assert!(!t.by_tier(tier).is_empty(), "missing tier {tier:?}");
        }
    }

    #[test]
    fn venue_score_is_average_of_tier_and_influence() {
        let mut t = VenueTable::new();
        let id = t.add("Test venue", VenueTier::A, 0.5);
        assert!((t.venue_score(id) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unknown_venue_scores_low() {
        let t = VenueTable::synthetic_default();
        let unknown = t.venue_score(VenueId(9999));
        let best_known = t.iter().map(|v| t.venue_score(v.id)).fold(0.0, f64::max);
        assert!(unknown < best_known);
        assert!(unknown >= 0.0);
    }

    #[test]
    fn influence_is_clamped() {
        let mut t = VenueTable::new();
        let id = t.add("Overclaimed venue", VenueTier::C, 7.0);
        assert_eq!(t.get(id).unwrap().influence, 1.0);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let t = VenueTable::synthetic_default();
        for v in t.iter() {
            let s = t.venue_score(v.id);
            assert!(
                (0.0..=1.0).contains(&s),
                "score {s} out of range for {}",
                v.name
            );
        }
    }
}
