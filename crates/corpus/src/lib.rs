//! Synthetic scholarly corpus and SurveyBank benchmark for the Reading Path
//! Generation reproduction.
//!
//! The paper evaluates on **SurveyBank**: 9,321 computer-science surveys plus
//! a 6-million-paper citation graph extracted from S2ORC.  Neither resource
//! is available offline, so this crate generates a synthetic corpus with the
//! same structural properties (see DESIGN.md for the substitution argument):
//!
//! * [`generator`] — deterministic corpus generation: topics with
//!   prerequisite chains, venues with tiers, papers with titles/abstracts
//!   built from topic vocabulary, temporally consistent citations with
//!   preferential attachment, surveys with occurrence-count-stratified
//!   reference lists.
//! * [`pipeline`] — the SurveyBank dataset-construction pipeline of Fig. 3
//!   (collection → deduplication → filtering → processing), producing the
//!   [`survey::SurveyBank`] benchmark.
//! * [`store`] — the assembled [`Corpus`]: papers, per-edge in-text
//!   occurrence counts, the citation graph, and the benchmark.
//! * [`stats`] — the statistics of Fig. 4 and Table I.
//!
//! Everything is deterministic given a [`generator::CorpusConfig`] seed, so
//! experiments are reproducible bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod citation;
pub mod generator;
pub mod paper;
pub mod pipeline;
pub mod stats;
pub mod store;
pub mod survey;
pub mod topic;
pub mod venue;

pub use generator::{generate, CorpusConfig};
pub use paper::{Paper, PaperId, PaperKind};
pub use store::Corpus;
pub use survey::{LabelLevel, Survey, SurveyBank, SurveyReference};
pub use topic::{Domain, TopicCatalog, TopicId};
pub use venue::{VenueId, VenueTable, VenueTier};
