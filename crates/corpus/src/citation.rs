//! Citation wiring for the synthetic corpus.
//!
//! The generator needs citation structure with the properties the paper's
//! method exploits:
//!
//! * **temporal consistency** — a paper only cites earlier papers;
//! * **preferential attachment** — already well-cited papers keep attracting
//!   citations, giving the power-law citation-count distribution of Fig. 4(a);
//! * **topical affinity** — most references stay inside the citing paper's
//!   topic;
//! * **prerequisite chains** — a sizeable fraction of references goes to
//!   *foundational papers of prerequisite topics*, which is what puts the
//!   survey-relevant prerequisite papers 1–2 citation hops away from the
//!   topically matching papers (Observation II);
//! * **in-text occurrence counts** — every citation edge carries "how many
//!   times the cited paper is mentioned", the `con(i, j)` of Eq. (2).
//!
//! [`CitationSampler`] implements weighted sampling without replacement over
//! candidate pools with those properties.

use crate::paper::PaperId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A reference held by a citing paper: the cited paper plus the in-text
/// occurrence count (`con(i, j)` in Eq. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reference {
    /// The cited paper.
    pub cited: PaperId,
    /// In-text occurrence count, at least 1.
    pub occurrences: u8,
}

/// Relative weights of the three candidate pools a citing paper draws from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolWeights {
    /// Weight of same-topic earlier papers.
    pub same_topic: f64,
    /// Weight of prerequisite-topic earlier papers.
    pub prerequisite: f64,
    /// Weight of arbitrary earlier papers (background citations).
    pub background: f64,
}

impl Default for PoolWeights {
    fn default() -> Self {
        PoolWeights {
            same_topic: 0.62,
            prerequisite: 0.28,
            background: 0.10,
        }
    }
}

impl PoolWeights {
    /// Normalises the weights to sum to 1 (degenerate all-zero weights become
    /// uniform).
    pub fn normalized(self) -> PoolWeights {
        let sum = self.same_topic + self.prerequisite + self.background;
        if sum <= 0.0 {
            return PoolWeights {
                same_topic: 1.0 / 3.0,
                prerequisite: 1.0 / 3.0,
                background: 1.0 / 3.0,
            };
        }
        PoolWeights {
            same_topic: self.same_topic / sum,
            prerequisite: self.prerequisite / sum,
            background: self.background / sum,
        }
    }
}

/// A candidate paper with a sampling weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate cited paper.
    pub paper: PaperId,
    /// Sampling weight (> 0); typically `1 + in_degree` for preferential
    /// attachment, optionally boosted for foundational papers.
    pub weight: f64,
}

/// Weighted sampling of citation targets.
#[derive(Debug)]
pub struct CitationSampler<'a> {
    rng: &'a mut StdRng,
}

impl<'a> CitationSampler<'a> {
    /// Creates a sampler borrowing the generator's RNG.
    pub fn new(rng: &'a mut StdRng) -> Self {
        CitationSampler { rng }
    }

    /// Samples up to `count` distinct papers from `candidates`,
    /// proportionally to their weights.
    pub fn sample_weighted(&mut self, candidates: &[Candidate], count: usize) -> Vec<PaperId> {
        if candidates.is_empty() || count == 0 {
            return Vec::new();
        }
        let mut pool: Vec<Candidate> = candidates
            .iter()
            .copied()
            .filter(|c| c.weight > 0.0)
            .collect();
        let mut chosen = Vec::with_capacity(count.min(pool.len()));
        while chosen.len() < count && !pool.is_empty() {
            let total: f64 = pool.iter().map(|c| c.weight).sum();
            let mut target = self.rng.gen::<f64>() * total;
            let mut picked = pool.len() - 1;
            for (i, c) in pool.iter().enumerate() {
                target -= c.weight;
                if target <= 0.0 {
                    picked = i;
                    break;
                }
            }
            chosen.push(pool.swap_remove(picked).paper);
        }
        chosen
    }

    /// Splits a total reference budget across the three pools according to
    /// `weights`, then samples from each pool.  Returns the union (distinct
    /// papers, order of pools preserved: same topic, prerequisites,
    /// background).
    pub fn sample_references(
        &mut self,
        total: usize,
        weights: PoolWeights,
        same_topic: &[Candidate],
        prerequisite: &[Candidate],
        background: &[Candidate],
    ) -> Vec<PaperId> {
        let w = weights.normalized();
        let mut n_same = (total as f64 * w.same_topic).round() as usize;
        let mut n_prereq = (total as f64 * w.prerequisite).round() as usize;
        let n_background = total.saturating_sub(n_same + n_prereq);

        // Rebalance when a pool is too small, so sparse early topics still
        // reach a sensible reference count.
        if same_topic.len() < n_same {
            n_prereq += n_same - same_topic.len();
            n_same = same_topic.len();
        }
        if prerequisite.len() < n_prereq {
            n_prereq = prerequisite.len();
        }

        let mut out = self.sample_weighted(same_topic, n_same);
        out.extend(self.sample_weighted(prerequisite, n_prereq));
        out.extend(self.sample_weighted(background, n_background));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Draws an in-text occurrence count for a regular (non-survey) citation:
    /// mostly 1, occasionally 2–3.
    pub fn regular_occurrences(&mut self) -> u8 {
        let roll: f64 = self.rng.gen();
        if roll < 0.78 {
            1
        } else if roll < 0.95 {
            2
        } else {
            3
        }
    }

    /// Draws an in-text occurrence count for a survey reference.  Important
    /// references (higher `importance` in `[0, 1]`) are mentioned more often,
    /// mirroring the skew of Fig. 1 (most references cited once, a core cited
    /// three or more times).
    pub fn survey_occurrences(&mut self, importance: f64) -> u8 {
        let importance = importance.clamp(0.0, 1.0);
        let roll: f64 = self.rng.gen();
        // The more important the reference, the more probability mass moves
        // toward high occurrence counts.
        let boosted = roll * (1.0 - 0.55 * importance);
        if boosted < 0.08 {
            let extra: f64 = self.rng.gen();
            if extra < 0.4 {
                5
            } else {
                4
            }
        } else if boosted < 0.22 {
            3
        } else if boosted < 0.48 {
            2
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn candidates(n: u32) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn sampling_respects_count_and_distinctness() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let picked = sampler.sample_weighted(&candidates(20), 8);
        assert_eq!(picked.len(), 8);
        let distinct: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn sampling_caps_at_pool_size() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let picked = sampler.sample_weighted(&candidates(3), 10);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn zero_weight_candidates_are_never_picked() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let pool = vec![
            Candidate {
                paper: PaperId(0),
                weight: 0.0,
            },
            Candidate {
                paper: PaperId(1),
                weight: 1.0,
            },
        ];
        for _ in 0..20 {
            let picked = sampler.sample_weighted(&pool, 1);
            assert_eq!(picked, vec![PaperId(1)]);
        }
    }

    #[test]
    fn heavier_candidates_are_picked_more_often() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let pool = vec![
            Candidate {
                paper: PaperId(0),
                weight: 10.0,
            },
            Candidate {
                paper: PaperId(1),
                weight: 1.0,
            },
        ];
        let mut heavy_first = 0;
        for _ in 0..200 {
            if sampler.sample_weighted(&pool, 1) == vec![PaperId(0)] {
                heavy_first += 1;
            }
        }
        assert!(
            heavy_first > 140,
            "heavy candidate picked only {heavy_first}/200 times"
        );
    }

    #[test]
    fn reference_sampling_mixes_pools() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let same: Vec<Candidate> = (0..30)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect();
        let prereq: Vec<Candidate> = (100..130)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect();
        let background: Vec<Candidate> = (200..230)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect();
        let refs =
            sampler.sample_references(20, PoolWeights::default(), &same, &prereq, &background);
        assert!(refs.len() >= 15);
        let n_prereq = refs.iter().filter(|p| (100..130).contains(&p.0)).count();
        assert!(n_prereq >= 2, "prerequisite pool under-sampled: {n_prereq}");
    }

    #[test]
    fn reference_sampling_rebalances_small_pools() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let same: Vec<Candidate> = (0..2)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect();
        let prereq: Vec<Candidate> = (10..40)
            .map(|i| Candidate {
                paper: PaperId(i),
                weight: 1.0,
            })
            .collect();
        let refs = sampler.sample_references(15, PoolWeights::default(), &same, &prereq, &[]);
        assert!(refs.len() >= 10, "got only {} references", refs.len());
    }

    #[test]
    fn occurrence_distributions_are_in_range_and_skewed() {
        let mut r = rng();
        let mut sampler = CitationSampler::new(&mut r);
        let mut ones = 0;
        for _ in 0..500 {
            let o = sampler.regular_occurrences();
            assert!((1..=3).contains(&o));
            if o == 1 {
                ones += 1;
            }
        }
        assert!(
            ones > 300,
            "regular citations should mostly have 1 occurrence"
        );

        let mut high_importance_heavy = 0;
        let mut low_importance_heavy = 0;
        for _ in 0..500 {
            if sampler.survey_occurrences(0.95) >= 3 {
                high_importance_heavy += 1;
            }
            if sampler.survey_occurrences(0.05) >= 3 {
                low_importance_heavy += 1;
            }
        }
        assert!(
            high_importance_heavy > low_importance_heavy,
            "important references must be cited more often ({high_importance_heavy} vs {low_importance_heavy})"
        );
    }

    #[test]
    fn pool_weight_normalization() {
        let w = PoolWeights {
            same_topic: 2.0,
            prerequisite: 1.0,
            background: 1.0,
        }
        .normalized();
        assert!((w.same_topic - 0.5).abs() < 1e-12);
        let degenerate = PoolWeights {
            same_topic: 0.0,
            prerequisite: 0.0,
            background: 0.0,
        }
        .normalized();
        assert!((degenerate.same_topic - 1.0 / 3.0).abs() < 1e-12);
    }
}
