//! Paper records.
//!
//! A [`Paper`] is the corpus-level view of a scientific article: identifier,
//! title, abstract, publication year, venue, topic, and whether it is a
//! survey.  Paper ids are dense and identical to the node ids of the
//! citation graph built over the corpus, so `PaperId(i)` and
//! `rpg_graph::NodeId(i)` always refer to the same article.

use rpg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::topic::TopicId;
use crate::venue::VenueId;

/// A dense paper identifier, aligned with the citation-graph node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PaperId(pub u32);

impl PaperId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a paper id from an array index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        PaperId(index as u32)
    }

    /// The citation-graph node corresponding to this paper.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }

    /// The paper corresponding to a citation-graph node.
    #[inline]
    pub fn from_node(node: NodeId) -> Self {
        PaperId(node.0)
    }
}

impl fmt::Display for PaperId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The kind of a paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperKind {
    /// A regular research article.
    Research,
    /// A survey / literature-review article.
    Survey,
}

/// A scientific paper in the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Paper {
    /// Dense identifier (equals the citation-graph node id).
    pub id: PaperId,
    /// Paper title.
    pub title: String,
    /// Paper abstract (a few sentences of topical text).
    pub abstract_text: String,
    /// Publication year.
    pub year: u16,
    /// Publication venue.
    pub venue: VenueId,
    /// The research topic this paper primarily belongs to.
    pub topic: TopicId,
    /// Research article vs. survey.
    pub kind: PaperKind,
    /// Number of pages of the (simulated) PDF; used by the dataset pipeline's
    /// filtering stage (surveys outside 2..=100 pages are dropped, as in the
    /// paper).
    pub pages: u16,
    /// Whether the (simulated) full text parsed cleanly; failures are dropped
    /// by the pipeline's filtering stage.
    pub parse_ok: bool,
}

impl Paper {
    /// Whether this paper is a survey.
    pub fn is_survey(&self) -> bool {
        self.kind == PaperKind::Survey
    }

    /// The text used for indexing: title plus abstract.
    pub fn indexed_text(&self) -> String {
        format!("{} {}", self.title, self.abstract_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Paper {
        Paper {
            id: PaperId(7),
            title: "Attention is all you need".to_string(),
            abstract_text: "We propose the transformer architecture.".to_string(),
            year: 2017,
            venue: VenueId(2),
            topic: TopicId(3),
            kind: PaperKind::Research,
            pages: 11,
            parse_ok: true,
        }
    }

    #[test]
    fn paper_id_aligns_with_node_id() {
        let id = PaperId(42);
        assert_eq!(id.node(), NodeId(42));
        assert_eq!(PaperId::from_node(NodeId(42)), id);
        assert_eq!(PaperId::from_index(42), id);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(PaperId(3).to_string(), "p3");
    }

    #[test]
    fn survey_flag_follows_kind() {
        let mut p = sample();
        assert!(!p.is_survey());
        p.kind = PaperKind::Survey;
        assert!(p.is_survey());
    }

    #[test]
    fn indexed_text_concatenates_title_and_abstract() {
        let p = sample();
        let text = p.indexed_text();
        assert!(text.contains("Attention"));
        assert!(text.contains("transformer"));
    }
}
