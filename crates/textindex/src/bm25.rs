//! Okapi BM25 ranking over an [`InvertedIndex`].
//!
//! The Google-Scholar-like and Microsoft-Academic-like simulated engines rank
//! with BM25 over a weighted combination of the title and body fields.

use crate::inverted::{Field, InvertedIndex};
use crate::tfidf::{sort_ranking, ScoredDoc};
use crate::tokenize::tokenize;
use crate::DocId;
use serde::{Deserialize, Serialize};

/// BM25 hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation parameter (`k1`).
    pub k1: f64,
    /// Length-normalisation parameter (`b`).
    pub b: f64,
    /// Multiplier applied to title-field term frequencies before saturation.
    pub title_boost: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params {
            k1: 1.2,
            b: 0.75,
            title_boost: 2.5,
        }
    }
}

/// BM25 scorer over an inverted index.
#[derive(Debug, Clone)]
pub struct Bm25Index<'a> {
    index: &'a InvertedIndex,
    params: Bm25Params,
}

impl<'a> Bm25Index<'a> {
    /// Wraps an inverted index with the given parameters.
    pub fn new(index: &'a InvertedIndex, params: Bm25Params) -> Self {
        Bm25Index { index, params }
    }

    /// The parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// BM25 inverse document frequency (with the usual +0.5 smoothing,
    /// floored at a small positive value so very common terms still count a
    /// little rather than negatively).
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.index.doc_count() as f64;
        let df = self.index.combined_document_frequency(term) as f64;
        let raw = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        raw.max(0.01)
    }

    /// BM25 score of `doc` for `query`.
    pub fn score(&self, query: &str, doc: DocId) -> f64 {
        let Some(stats) = self.index.doc_stats(doc) else {
            return 0.0;
        };
        let avg_len = self.index.average_body_len()
            + self.params.title_boost * self.index.average_title_len();
        let doc_len =
            f64::from(stats.body_len) + self.params.title_boost * f64::from(stats.title_len);
        let mut total = 0.0;
        for token in tokenize(query) {
            let tf_title = f64::from(self.index.term_frequency(Field::Title, &token.term, doc));
            let tf_body = f64::from(self.index.term_frequency(Field::Body, &token.term, doc));
            let tf = self.params.title_boost * tf_title + tf_body;
            if tf <= 0.0 {
                continue;
            }
            let norm = if avg_len > 0.0 {
                1.0 - self.params.b + self.params.b * doc_len / avg_len
            } else {
                1.0
            };
            let saturated = tf * (self.params.k1 + 1.0) / (tf + self.params.k1 * norm);
            total += self.idf(&token.term) * saturated;
        }
        total
    }

    /// Ranks every document containing at least one query term, returning the
    /// top `limit` results.
    pub fn search(&self, query: &str, limit: usize) -> Vec<ScoredDoc> {
        let candidates = self.index.disjunctive_candidates(query);
        let mut scored: Vec<ScoredDoc> = candidates
            .into_iter()
            .map(|doc| ScoredDoc {
                doc,
                score: self.score(query, doc),
            })
            .filter(|s| s.score > 0.0)
            .collect();
        sort_ranking(&mut scored);
        scored.truncate(limit);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document(
            0,
            "hate speech detection using natural language processing",
            "a survey of hate speech detection methods",
        );
        idx.add_document(
            1,
            "sentiment analysis of tweets",
            "classifiers for social media sentiment",
        );
        idx.add_document(
            2,
            "language models",
            "large pretrained language models for text",
        );
        idx.add_document(
            3,
            "hate crime statistics",
            "reports about hate crime trends over years",
        );
        idx
    }

    #[test]
    fn exact_topic_match_wins() {
        let idx = index();
        let bm25 = Bm25Index::new(&idx, Bm25Params::default());
        let results = bm25.search("hate speech detection", 10);
        assert_eq!(results[0].doc, 0);
    }

    #[test]
    fn scores_are_monotone_in_matched_terms() {
        let idx = index();
        let bm25 = Bm25Index::new(&idx, Bm25Params::default());
        let one_term = bm25.score("hate", 0);
        let two_terms = bm25.score("hate speech", 0);
        assert!(two_terms > one_term);
    }

    #[test]
    fn unknown_document_scores_zero() {
        let idx = index();
        let bm25 = Bm25Index::new(&idx, Bm25Params::default());
        assert_eq!(bm25.score("hate", 999), 0.0);
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_terms() {
        let mut idx = InvertedIndex::new();
        for i in 0..5 {
            idx.add_document(i, "common term everywhere", "common term again");
        }
        let bm25 = Bm25Index::new(&idx, Bm25Params::default());
        assert!(bm25.idf("common") > 0.0);
    }

    #[test]
    fn limit_and_empty_query_behave() {
        let idx = index();
        let bm25 = Bm25Index::new(&idx, Bm25Params::default());
        assert_eq!(bm25.search("hate", 1).len(), 1);
        assert!(bm25.search("", 5).is_empty());
    }

    #[test]
    fn title_boost_changes_ranking() {
        let mut idx = InvertedIndex::new();
        // Doc 0 mentions the query only in its body, doc 1 only in its title.
        idx.add_document(
            0,
            "something unrelated entirely",
            "transformer architectures analysis",
        );
        idx.add_document(
            1,
            "transformer architectures analysis",
            "something unrelated entirely",
        );
        let no_boost = Bm25Index::new(
            &idx,
            Bm25Params {
                title_boost: 1.0,
                ..Default::default()
            },
        );
        let boosted = Bm25Index::new(
            &idx,
            Bm25Params {
                title_boost: 5.0,
                ..Default::default()
            },
        );
        let plain_order: Vec<_> = no_boost
            .search("transformer architectures", 2)
            .iter()
            .map(|s| s.doc)
            .collect();
        let boosted_results = boosted.search("transformer architectures", 2);
        assert_eq!(boosted_results[0].doc, 1, "title match must win with boost");
        // Without boost both have identical field-combined tf; ranking falls
        // back to the deterministic tie-break.
        assert_eq!(plain_order[0], 0);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// BM25 scores are finite, non-negative, and the search results are
        /// sorted in non-increasing score order.
        #[test]
        fn scores_and_order_are_sane(
            titles in prop::collection::vec("[a-z]{3,7}( [a-z]{3,7}){0,4}", 1..15),
            query in "[a-z]{3,7}( [a-z]{3,7}){0,2}",
        ) {
            let mut idx = InvertedIndex::new();
            for (i, t) in titles.iter().enumerate() {
                idx.add_document(i as DocId, t, t);
            }
            let bm25 = Bm25Index::new(&idx, Bm25Params::default());
            let results = bm25.search(&query, 50);
            for pair in results.windows(2) {
                prop_assert!(pair[0].score >= pair[1].score);
            }
            for r in &results {
                prop_assert!(r.score.is_finite() && r.score > 0.0);
            }
        }
    }
}
