//! Inverted index over document fields.
//!
//! Documents are added as `(doc id, title, body)` pairs; the index keeps
//! separate per-field postings because the simulated search engines weight
//! title matches much more heavily than body matches (mirroring the paper's
//! observation that existing engines "solely return the paper whose title
//! contains query phrases").

use crate::tokenize::tokenize;
use crate::vocab::{TermId, Vocabulary};
use crate::DocId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which document field a posting refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    /// The paper title.
    Title,
    /// The paper abstract / body text.
    Body,
}

/// A single posting: a document and the in-field term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the field.
    pub term_frequency: u32,
}

/// Per-document statistics kept by the index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocStats {
    /// Number of (post-tokenisation) terms in the title field.
    pub title_len: u32,
    /// Number of (post-tokenisation) terms in the body field.
    pub body_len: u32,
}

/// An inverted index with separate title and body postings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    vocab: Vocabulary,
    title_postings: HashMap<TermId, Vec<Posting>>,
    body_postings: HashMap<TermId, Vec<Posting>>,
    doc_stats: HashMap<DocId, DocStats>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_stats.len()
    }

    /// Number of distinct terms across both fields.
    pub fn term_count(&self) -> usize {
        self.vocab.len()
    }

    /// The vocabulary used by this index.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Per-document length statistics, if the document was indexed.
    pub fn doc_stats(&self, doc: DocId) -> Option<DocStats> {
        self.doc_stats.get(&doc).copied()
    }

    /// Average body length over all indexed documents (used by BM25).
    pub fn average_body_len(&self) -> f64 {
        if self.doc_stats.is_empty() {
            return 0.0;
        }
        let total: u64 = self.doc_stats.values().map(|s| u64::from(s.body_len)).sum();
        total as f64 / self.doc_stats.len() as f64
    }

    /// Average title length over all indexed documents.
    pub fn average_title_len(&self) -> f64 {
        if self.doc_stats.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .doc_stats
            .values()
            .map(|s| u64::from(s.title_len))
            .sum();
        total as f64 / self.doc_stats.len() as f64
    }

    /// Indexes a document.  Re-adding an existing `doc` id appends postings
    /// (callers are expected to use unique ids).
    pub fn add_document(&mut self, doc: DocId, title: &str, body: &str) {
        let title_tokens = tokenize(title);
        let body_tokens = tokenize(body);
        let stats = self.doc_stats.entry(doc).or_default();
        stats.title_len += title_tokens.len() as u32;
        stats.body_len += body_tokens.len() as u32;

        let mut title_tf: HashMap<TermId, u32> = HashMap::new();
        for token in &title_tokens {
            *title_tf.entry(self.vocab.intern(&token.term)).or_insert(0) += 1;
        }
        let mut body_tf: HashMap<TermId, u32> = HashMap::new();
        for token in &body_tokens {
            *body_tf.entry(self.vocab.intern(&token.term)).or_insert(0) += 1;
        }
        for (term, tf) in title_tf {
            self.title_postings.entry(term).or_default().push(Posting {
                doc,
                term_frequency: tf,
            });
        }
        for (term, tf) in body_tf {
            self.body_postings.entry(term).or_default().push(Posting {
                doc,
                term_frequency: tf,
            });
        }
    }

    /// Rebuilds an index from previously extracted parts (e.g. a decoded
    /// snapshot section) without re-tokenising any text.
    ///
    /// `terms` lists the vocabulary in id order; `title_postings` and
    /// `body_postings` are indexed by [`TermId`] and must have one (possibly
    /// empty) postings list per term; `doc_stats` lists the per-document
    /// length statistics.  Returns a human-readable error when the parts are
    /// structurally inconsistent (duplicate terms, postings for unknown
    /// documents, mismatched lengths).
    pub fn from_parts(
        terms: Vec<String>,
        title_postings: Vec<Vec<Posting>>,
        body_postings: Vec<Vec<Posting>>,
        doc_stats: Vec<(DocId, DocStats)>,
    ) -> Result<Self, String> {
        if title_postings.len() != terms.len() || body_postings.len() != terms.len() {
            return Err(format!(
                "postings tables have {}/{} entries for {} terms",
                title_postings.len(),
                body_postings.len(),
                terms.len()
            ));
        }
        let mut vocab = Vocabulary::new();
        for (i, term) in terms.iter().enumerate() {
            let id = vocab.intern(term);
            if id as usize != i {
                return Err(format!("duplicate vocabulary term {term:?}"));
            }
        }
        let stats: HashMap<DocId, DocStats> = doc_stats.iter().copied().collect();
        if stats.len() != doc_stats.len() {
            return Err("duplicate document in doc stats".to_string());
        }
        let collect = |lists: Vec<Vec<Posting>>| -> Result<HashMap<TermId, Vec<Posting>>, String> {
            let mut map = HashMap::new();
            for (i, postings) in lists.into_iter().enumerate() {
                if let Some(p) = postings.iter().find(|p| !stats.contains_key(&p.doc)) {
                    return Err(format!(
                        "postings for term {:?} reference unknown document {}",
                        terms[i], p.doc
                    ));
                }
                if !postings.is_empty() {
                    map.insert(i as TermId, postings);
                }
            }
            Ok(map)
        };
        let title_postings = collect(title_postings)?;
        let body_postings = collect(body_postings)?;
        Ok(InvertedIndex {
            vocab,
            title_postings,
            body_postings,
            doc_stats: stats,
        })
    }

    /// The postings list of `term` in `field`, empty if the term is unknown.
    pub fn postings(&self, field: Field, term: &str) -> &[Posting] {
        let Some(id) = self.vocab.get(term) else {
            return &[];
        };
        let map = match field {
            Field::Title => &self.title_postings,
            Field::Body => &self.body_postings,
        };
        map.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency of `term` in `field`.
    pub fn document_frequency(&self, field: Field, term: &str) -> usize {
        self.postings(field, term).len()
    }

    /// Document frequency of `term` across both fields (a document counts
    /// once even if the term appears in both its title and body).
    pub fn combined_document_frequency(&self, term: &str) -> usize {
        let mut docs: std::collections::HashSet<DocId> = std::collections::HashSet::new();
        docs.extend(self.postings(Field::Title, term).iter().map(|p| p.doc));
        docs.extend(self.postings(Field::Body, term).iter().map(|p| p.doc));
        docs.len()
    }

    /// Term frequency of `term` in the given field of `doc`.
    pub fn term_frequency(&self, field: Field, term: &str, doc: DocId) -> u32 {
        self.postings(field, term)
            .iter()
            .find(|p| p.doc == doc)
            .map(|p| p.term_frequency)
            .unwrap_or(0)
    }

    /// Documents whose title or body contains *every* query term (boolean AND
    /// retrieval), useful as a candidate generator.
    pub fn conjunctive_candidates(&self, query: &str) -> Vec<DocId> {
        let terms: Vec<String> = tokenize(query).into_iter().map(|t| t.term).collect();
        if terms.is_empty() {
            return Vec::new();
        }
        let mut candidate_sets: Vec<std::collections::HashSet<DocId>> = Vec::new();
        for term in &terms {
            let mut docs: std::collections::HashSet<DocId> = std::collections::HashSet::new();
            docs.extend(self.postings(Field::Title, term).iter().map(|p| p.doc));
            docs.extend(self.postings(Field::Body, term).iter().map(|p| p.doc));
            candidate_sets.push(docs);
        }
        let (first, rest) = candidate_sets.split_first().expect("non-empty terms");
        let mut result: Vec<DocId> = first
            .iter()
            .filter(|d| rest.iter().all(|s| s.contains(d)))
            .copied()
            .collect();
        result.sort_unstable();
        result
    }

    /// Documents containing *any* query term (boolean OR retrieval).
    pub fn disjunctive_candidates(&self, query: &str) -> Vec<DocId> {
        let terms: Vec<String> = tokenize(query).into_iter().map(|t| t.term).collect();
        let mut docs: std::collections::HashSet<DocId> = std::collections::HashSet::new();
        for term in &terms {
            docs.extend(self.postings(Field::Title, term).iter().map(|p| p.doc));
            docs.extend(self.postings(Field::Body, term).iter().map(|p| p.doc));
        }
        let mut result: Vec<DocId> = docs.into_iter().collect();
        result.sort_unstable();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document(
            0,
            "A survey on hate speech detection",
            "hate speech detection on social media platforms",
        );
        idx.add_document(
            1,
            "Deep learning for image classification",
            "convolutional networks for images",
        );
        idx.add_document(
            2,
            "Hate speech and abusive language",
            "annotation of abusive language corpora",
        );
        idx
    }

    #[test]
    fn doc_and_term_counts() {
        let idx = sample_index();
        assert_eq!(idx.doc_count(), 3);
        assert!(idx.term_count() > 5);
    }

    #[test]
    fn title_postings_find_documents() {
        let idx = sample_index();
        let docs: Vec<_> = idx
            .postings(Field::Title, "hate")
            .iter()
            .map(|p| p.doc)
            .collect();
        assert_eq!(docs, vec![0, 2]);
        assert_eq!(idx.document_frequency(Field::Title, "hate"), 2);
        assert_eq!(idx.document_frequency(Field::Title, "quantum"), 0);
    }

    #[test]
    fn term_frequencies_are_per_field() {
        let idx = sample_index();
        assert_eq!(idx.term_frequency(Field::Title, "speech", 0), 1);
        assert_eq!(idx.term_frequency(Field::Body, "speech", 0), 1);
        assert_eq!(idx.term_frequency(Field::Body, "speech", 1), 0);
    }

    #[test]
    fn combined_document_frequency_deduplicates() {
        let idx = sample_index();
        // "speech" appears in both title and body of doc 0, and title of doc 2.
        assert_eq!(idx.combined_document_frequency("speech"), 2);
    }

    #[test]
    fn conjunctive_retrieval_requires_all_terms() {
        let idx = sample_index();
        assert_eq!(idx.conjunctive_candidates("hate speech detection"), vec![0]);
        assert_eq!(idx.conjunctive_candidates("hate speech"), vec![0, 2]);
        assert!(idx.conjunctive_candidates("quantum computing").is_empty());
        assert!(idx.conjunctive_candidates("").is_empty());
    }

    #[test]
    fn disjunctive_retrieval_takes_union() {
        let idx = sample_index();
        assert_eq!(idx.disjunctive_candidates("hate image"), vec![0, 1, 2]);
        assert!(idx.disjunctive_candidates("").is_empty());
    }

    #[test]
    fn doc_stats_track_lengths() {
        let idx = sample_index();
        let stats = idx.doc_stats(0).unwrap();
        assert!(stats.title_len >= 3);
        assert!(stats.body_len >= 4);
        assert!(idx.doc_stats(99).is_none());
        assert!(idx.average_body_len() > 0.0);
        assert!(idx.average_title_len() > 0.0);
    }

    #[test]
    fn from_parts_round_trips_an_index() {
        let idx = sample_index();
        let terms: Vec<String> = idx
            .vocabulary()
            .iter()
            .map(|(_, t)| t.to_string())
            .collect();
        let extract = |field: Field| -> Vec<Vec<Posting>> {
            terms
                .iter()
                .map(|t| idx.postings(field, t).to_vec())
                .collect()
        };
        let stats: Vec<(DocId, DocStats)> = (0..idx.doc_count() as DocId)
            .map(|d| (d, idx.doc_stats(d).unwrap()))
            .collect();
        let rebuilt = InvertedIndex::from_parts(
            terms.clone(),
            extract(Field::Title),
            extract(Field::Body),
            stats,
        )
        .unwrap();
        assert_eq!(rebuilt.doc_count(), idx.doc_count());
        assert_eq!(rebuilt.term_count(), idx.term_count());
        for term in &terms {
            assert_eq!(
                rebuilt.postings(Field::Title, term),
                idx.postings(Field::Title, term)
            );
            assert_eq!(
                rebuilt.postings(Field::Body, term),
                idx.postings(Field::Body, term)
            );
        }
        assert_eq!(rebuilt.average_body_len(), idx.average_body_len());
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        // Mismatched postings-table length.
        assert!(
            InvertedIndex::from_parts(vec!["a".to_string()], vec![], vec![vec![]], vec![]).is_err()
        );
        // Duplicate vocabulary term.
        assert!(InvertedIndex::from_parts(
            vec!["a".to_string(), "a".to_string()],
            vec![vec![], vec![]],
            vec![vec![], vec![]],
            vec![],
        )
        .is_err());
        // Posting referencing a document with no stats.
        assert!(InvertedIndex::from_parts(
            vec!["a".to_string()],
            vec![vec![Posting {
                doc: 7,
                term_frequency: 1
            }]],
            vec![vec![]],
            vec![],
        )
        .is_err());
        // Duplicate doc-stats entry.
        assert!(InvertedIndex::from_parts(
            vec![],
            vec![],
            vec![],
            vec![(0, DocStats::default()), (0, DocStats::default())],
        )
        .is_err());
    }

    #[test]
    fn empty_index_averages_are_zero() {
        let idx = InvertedIndex::new();
        assert_eq!(idx.average_body_len(), 0.0);
        assert_eq!(idx.average_title_len(), 0.0);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every document that contains a term lexically is discoverable
        /// through the postings of that term.
        #[test]
        fn postings_cover_documents(titles in prop::collection::vec("[a-z]{3,8}( [a-z]{3,8}){0,5}", 1..20)) {
            let mut idx = InvertedIndex::new();
            for (i, title) in titles.iter().enumerate() {
                idx.add_document(i as DocId, title, "");
            }
            for (i, title) in titles.iter().enumerate() {
                for token in tokenize(title) {
                    let docs: Vec<_> = idx
                        .postings(Field::Title, &token.term)
                        .iter()
                        .map(|p| p.doc)
                        .collect();
                    prop_assert!(docs.contains(&(i as DocId)));
                }
            }
        }

        /// Conjunctive candidates are always a subset of disjunctive ones.
        #[test]
        fn conjunction_subset_of_disjunction(
            titles in prop::collection::vec("[a-z]{3,6}( [a-z]{3,6}){0,4}", 1..15),
            query in "[a-z]{3,6}( [a-z]{3,6}){0,2}",
        ) {
            let mut idx = InvertedIndex::new();
            for (i, title) in titles.iter().enumerate() {
                idx.add_document(i as DocId, title, title);
            }
            let conj = idx.conjunctive_candidates(&query);
            let disj = idx.disjunctive_candidates(&query);
            for d in &conj {
                prop_assert!(disj.contains(d));
            }
        }
    }
}
