//! Vector and set similarity measures.

/// Cosine similarity between two equal-length vectors.  Returns 0 when either
/// vector is all-zero or the lengths differ.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Jaccard similarity between two sets given as slices (duplicates ignored).
pub fn jaccard<T: Eq + std::hash::Hash + Copy>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<T> = a.iter().copied().collect();
    let sb: std::collections::HashSet<T> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    intersection / union
}

/// Dice coefficient between two sets given as slices.
pub fn dice<T: Eq + std::hash::Hash + Copy>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<T> = a.iter().copied().collect();
    let sb: std::collections::HashSet<T> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    2.0 * intersection / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient (Szymkiewicz–Simpson): |A ∩ B| / min(|A|, |B|).
pub fn overlap_coefficient<T: Eq + std::hash::Hash + Copy>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<T> = a.iter().copied().collect();
    let sb: std::collections::HashSet<T> = b.iter().copied().collect();
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 0.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    intersection / min as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = vec![1.0, 2.0, 3.0];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_handles_degenerate_inputs() {
        assert_eq!(cosine(&[], &[]), 0.0);
        assert_eq!(cosine(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn jaccard_counts_overlap() {
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard::<u32>(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        // Duplicates do not change the result.
        assert_eq!(jaccard(&[1, 1, 2], &[1, 2, 2]), 1.0);
    }

    #[test]
    fn dice_and_jaccard_agree_on_extremes() {
        assert_eq!(dice(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(dice(&[1], &[2]), 0.0);
        assert_eq!(dice::<u32>(&[], &[]), 1.0);
    }

    #[test]
    fn overlap_coefficient_uses_smaller_set() {
        assert_eq!(overlap_coefficient(&[1, 2], &[1, 2, 3, 4]), 1.0);
        assert_eq!(overlap_coefficient(&[1], &[2, 3]), 0.0);
        assert_eq!(overlap_coefficient::<u32>(&[], &[1]), 0.0);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Cosine similarity is symmetric and within [-1, 1].
        #[test]
        fn cosine_symmetric_bounded(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..20),
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let ab = cosine(&a, &b);
            let ba = cosine(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        }

        /// Jaccard, Dice and overlap are all within [0, 1] and Dice >= Jaccard.
        #[test]
        fn set_similarities_bounded(
            a in prop::collection::vec(0u32..30, 0..25),
            b in prop::collection::vec(0u32..30, 0..25),
        ) {
            let j = jaccard(&a, &b);
            let d = dice(&a, &b);
            let o = overlap_coefficient(&a, &b);
            for s in [j, d, o] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            }
            prop_assert!(d + 1e-12 >= j);
        }
    }
}
