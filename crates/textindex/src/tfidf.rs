//! TF-IDF scoring over an [`InvertedIndex`].
//!
//! Used by the AMiner-like simulated engine and as the document-weighting
//! basis for the embedding model in [`crate::embed`].

use crate::inverted::{Field, InvertedIndex};
use crate::tokenize::tokenize;
use crate::DocId;

/// A scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The document id.
    pub doc: DocId,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// Sorts scored documents by descending score, breaking ties by ascending doc
/// id so rankings are deterministic.
pub fn sort_ranking(scores: &mut [ScoredDoc]) {
    scores.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
}

/// TF-IDF ranking over an inverted index.
///
/// The score of a document for a query is the sum over query terms of
/// `tf_weight * idf`, where title occurrences can be boosted relative to body
/// occurrences with `title_boost`.
#[derive(Debug, Clone)]
pub struct TfIdfIndex<'a> {
    index: &'a InvertedIndex,
    /// Multiplier applied to title term frequencies.
    pub title_boost: f64,
}

impl<'a> TfIdfIndex<'a> {
    /// Wraps an inverted index with a given title boost (1.0 = no boost).
    pub fn new(index: &'a InvertedIndex, title_boost: f64) -> Self {
        TfIdfIndex { index, title_boost }
    }

    /// Inverse document frequency of a term with add-one smoothing.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.index.doc_count() as f64;
        let df = self.index.combined_document_frequency(term) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    /// TF-IDF score of a single document for `query`.
    pub fn score(&self, query: &str, doc: DocId) -> f64 {
        let mut total = 0.0;
        for token in tokenize(query) {
            let tf_title = f64::from(self.index.term_frequency(Field::Title, &token.term, doc));
            let tf_body = f64::from(self.index.term_frequency(Field::Body, &token.term, doc));
            let tf = self.title_boost * tf_title + tf_body;
            if tf > 0.0 {
                total += (1.0 + tf.ln()) * self.idf(&token.term);
            }
        }
        total
    }

    /// Ranks every document containing at least one query term.
    pub fn search(&self, query: &str, limit: usize) -> Vec<ScoredDoc> {
        let candidates = self.index.disjunctive_candidates(query);
        let mut scored: Vec<ScoredDoc> = candidates
            .into_iter()
            .map(|doc| ScoredDoc {
                doc,
                score: self.score(query, doc),
            })
            .filter(|s| s.score > 0.0)
            .collect();
        sort_ranking(&mut scored);
        scored.truncate(limit);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document(
            0,
            "hate speech detection survey",
            "methods for hate speech detection",
        );
        idx.add_document(
            1,
            "image classification",
            "deep networks for images and speech",
        );
        idx.add_document(
            2,
            "speech recognition",
            "acoustic models for speech and audio",
        );
        idx.add_document(3, "graph databases", "storage engines for graphs");
        idx
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let idx = index();
        let tfidf = TfIdfIndex::new(&idx, 1.0);
        // "speech" appears in 3 documents, "hate" in 1.
        assert!(tfidf.idf("hate") > tfidf.idf("speech"));
        // Unknown terms have the highest idf.
        assert!(tfidf.idf("quantum") >= tfidf.idf("hate"));
    }

    #[test]
    fn relevant_documents_rank_higher() {
        let idx = index();
        let tfidf = TfIdfIndex::new(&idx, 1.0);
        let results = tfidf.search("hate speech detection", 10);
        assert_eq!(results[0].doc, 0);
        assert!(results[0].score > results.last().unwrap().score);
    }

    #[test]
    fn title_boost_prefers_title_matches() {
        let idx = index();
        let plain = TfIdfIndex::new(&idx, 1.0);
        let boosted = TfIdfIndex::new(&idx, 3.0);
        // Doc 2 has "speech" in its title, doc 1 only in its body.
        let plain_gap = plain.score("speech", 2) - plain.score("speech", 1);
        let boosted_gap = boosted.score("speech", 2) - boosted.score("speech", 1);
        assert!(boosted_gap > plain_gap);
    }

    #[test]
    fn limit_truncates_results() {
        let idx = index();
        let tfidf = TfIdfIndex::new(&idx, 1.0);
        let results = tfidf.search("speech", 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn irrelevant_query_returns_nothing() {
        let idx = index();
        let tfidf = TfIdfIndex::new(&idx, 1.0);
        assert!(tfidf.search("quantum chromodynamics", 10).is_empty());
        assert!(tfidf.search("", 10).is_empty());
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let mut idx = InvertedIndex::new();
        idx.add_document(5, "same title words", "");
        idx.add_document(3, "same title words", "");
        let tfidf = TfIdfIndex::new(&idx, 1.0);
        let results = tfidf.search("same title", 10);
        assert_eq!(results[0].doc, 3);
        assert_eq!(results[1].doc, 5);
    }
}
