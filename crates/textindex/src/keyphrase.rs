//! TopicRank-style keyphrase extraction.
//!
//! SurveyBank's query for each survey is the set of key phrases extracted
//! from its title with the TopicRank algorithm (Bougouin et al., 2013, via
//! `pke`).  This module reproduces the algorithm's structure:
//!
//! 1. **Candidate selection** — maximal runs of content words (stop words and
//!    punctuation break candidates), mirroring TopicRank's noun-phrase
//!    chunking approximation.
//! 2. **Topic clustering** — candidates whose stemmed word sets overlap by at
//!    least a threshold (Jaccard ≥ 0.25 by default) are merged into a topic
//!    with single-link agglomerative clustering.
//! 3. **Topic graph ranking** — topics form a complete graph whose edge
//!    weights are the sum of reciprocal distances between their candidates'
//!    positions in the text; topics are ranked with PageRank-style power
//!    iteration.
//! 4. **Selection** — for each of the top topics, the candidate appearing
//!    earliest in the text is emitted as the key phrase.

use crate::similarity::jaccard;
use crate::tokenize::{is_stop_word, stem, tokenize_surface};
use serde::{Deserialize, Serialize};

/// Configuration for [`extract_keyphrases`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyphraseConfig {
    /// Maximum number of key phrases to return.
    pub max_phrases: usize,
    /// Jaccard similarity threshold (over stemmed word sets) above which two
    /// candidates are clustered into the same topic.
    pub clustering_threshold: f64,
    /// PageRank damping factor for the topic graph.
    pub damping: f64,
    /// Number of power iterations on the topic graph.
    pub iterations: usize,
    /// Maximum number of words in a candidate phrase.
    pub max_phrase_words: usize,
}

impl Default for KeyphraseConfig {
    fn default() -> Self {
        KeyphraseConfig {
            max_phrases: 3,
            clustering_threshold: 0.25,
            damping: 0.85,
            iterations: 30,
            max_phrase_words: 4,
        }
    }
}

/// A candidate phrase with its first occurrence position.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    /// Surface words (lowercased, unstemmed) of the phrase.
    words: Vec<String>,
    /// Stemmed word set used for clustering.
    stems: Vec<String>,
    /// Token position of the first word of the first occurrence.
    first_position: usize,
}

impl Candidate {
    fn surface(&self) -> String {
        self.words.join(" ")
    }
}

/// Extracts candidate phrases: maximal runs of content words.
fn candidates(text: &str, max_words: usize) -> Vec<Candidate> {
    let tokens = tokenize_surface(text);
    let mut out: Vec<Candidate> = Vec::new();
    let mut current: Vec<(String, usize)> = Vec::new();

    let flush = |current: &mut Vec<(String, usize)>, out: &mut Vec<Candidate>| {
        if current.is_empty() {
            return;
        }
        // Long runs are truncated to the first `max_words` words.
        let words: Vec<String> = current
            .iter()
            .take(max_words)
            .map(|(w, _)| w.clone())
            .collect();
        let first_position = current[0].1;
        let stems = words.iter().map(|w| stem(w)).collect();
        out.push(Candidate {
            words,
            stems,
            first_position,
        });
        current.clear();
    };

    let mut last_position: Option<usize> = None;
    for token in tokens {
        let breaks_run = is_stop_word(&token.term)
            || token.term.chars().all(|c| c.is_ascii_digit())
            || token.term.len() < 2
            || last_position.is_some_and(|p| token.position != p + 1);
        if breaks_run {
            flush(&mut current, &mut out);
            if !is_stop_word(&token.term)
                && !token.term.chars().all(|c| c.is_ascii_digit())
                && token.term.len() >= 2
            {
                current.push((token.term.clone(), token.position));
            }
        } else {
            current.push((token.term.clone(), token.position));
        }
        last_position = Some(token.position);
    }
    flush(&mut current, &mut out);
    out
}

/// Single-link agglomerative clustering of candidates into topics.
fn cluster(candidates: &[Candidate], threshold: f64) -> Vec<Vec<usize>> {
    let n = candidates.len();
    let mut cluster_of: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let si: Vec<&str> = candidates[i].stems.iter().map(String::as_str).collect();
            let sj: Vec<&str> = candidates[j].stems.iter().map(String::as_str).collect();
            if jaccard(&si, &sj) >= threshold {
                // Merge: relabel j's cluster to i's.
                let (a, b) = (cluster_of[i], cluster_of[j]);
                if a != b {
                    for c in cluster_of.iter_mut() {
                        if *c == b {
                            *c = a;
                        }
                    }
                }
            }
        }
    }
    let mut map: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for (idx, &c) in cluster_of.iter().enumerate() {
        map.entry(c).or_default().push(idx);
    }
    let mut clusters: Vec<Vec<usize>> = map.into_values().collect();
    clusters.sort_by_key(|members| members[0]);
    clusters
}

/// Ranks topics on the complete topic graph with PageRank power iteration.
fn rank_topics(
    candidates: &[Candidate],
    clusters: &[Vec<usize>],
    config: &KeyphraseConfig,
) -> Vec<f64> {
    let k = clusters.len();
    if k == 0 {
        return Vec::new();
    }
    // Edge weight between topics = sum over candidate pairs of reciprocal
    // positional distance (closer mentions -> stronger connection).
    let mut weights = vec![vec![0.0f64; k]; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let mut w = 0.0;
            for &ca in &clusters[a] {
                for &cb in &clusters[b] {
                    let d = candidates[ca]
                        .first_position
                        .abs_diff(candidates[cb].first_position)
                        .max(1);
                    w += 1.0 / d as f64;
                }
            }
            weights[a][b] = w;
            weights[b][a] = w;
        }
    }
    let out_weight: Vec<f64> = weights.iter().map(|row| row.iter().sum()).collect();
    let mut score = vec![1.0 / k as f64; k];
    for _ in 0..config.iterations {
        let mut next = vec![(1.0 - config.damping) / k as f64; k];
        for i in 0..k {
            if out_weight[i] <= 0.0 {
                // Dangling topic: spread uniformly.
                for item in next.iter_mut() {
                    *item += config.damping * score[i] / k as f64;
                }
                continue;
            }
            for j in 0..k {
                if weights[i][j] > 0.0 {
                    next[j] += config.damping * score[i] * weights[i][j] / out_weight[i];
                }
            }
        }
        score = next;
    }
    score
}

/// Extracts up to `config.max_phrases` key phrases from `text`.
///
/// The output phrases are lowercase surface forms ordered by descending topic
/// score (ties broken by earliest occurrence), which is the order the
/// SurveyBank query builder uses to join them into a query string.
pub fn extract_keyphrases(text: &str, config: &KeyphraseConfig) -> Vec<String> {
    let candidates = candidates(text, config.max_phrase_words);
    if candidates.is_empty() {
        return Vec::new();
    }
    let clusters = cluster(&candidates, config.clustering_threshold);
    let scores = rank_topics(&candidates, &clusters, config);

    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let fa = clusters[a.0]
                    .iter()
                    .map(|&c| candidates[c].first_position)
                    .min();
                let fb = clusters[b.0]
                    .iter()
                    .map(|&c| candidates[c].first_position)
                    .min();
                fa.cmp(&fb)
            })
    });

    let mut phrases = Vec::new();
    for (topic, _) in ranked.into_iter().take(config.max_phrases) {
        // Representative = earliest-occurring candidate of the topic.
        let representative = clusters[topic]
            .iter()
            .min_by_key(|&&c| candidates[c].first_position)
            .copied()
            .expect("clusters are non-empty");
        phrases.push(candidates[representative].surface());
    }
    phrases
}

/// Convenience: extracts key phrases with the default configuration.
pub fn extract_default(text: &str) -> Vec<String> {
    extract_keyphrases(text, &KeyphraseConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_title_yields_topic_phrases() {
        let phrases =
            extract_default("A survey on hate speech detection using natural language processing");
        assert!(!phrases.is_empty());
        let joined = phrases.join(" | ");
        assert!(joined.contains("hate speech detection"), "got: {joined}");
        assert!(
            joined.contains("natural language processing"),
            "got: {joined}"
        );
        // "survey" is a standalone candidate but the informative multi-word
        // phrases must be among the results.
    }

    #[test]
    fn stop_words_break_candidates() {
        let phrases = extract_default("graph databases for the management of large networks");
        let joined = phrases.join(" | ");
        assert!(joined.contains("graph databas"), "got: {joined}");
        assert!(!joined.contains("for the"));
    }

    #[test]
    fn empty_and_stopword_only_titles() {
        assert!(extract_default("").is_empty());
        assert!(extract_default("of the and for").is_empty());
    }

    #[test]
    fn max_phrases_is_respected() {
        let config = KeyphraseConfig {
            max_phrases: 1,
            ..Default::default()
        };
        let phrases = extract_keyphrases(
            "deep reinforcement learning for autonomous driving and robot navigation",
            &config,
        );
        assert_eq!(phrases.len(), 1);
    }

    #[test]
    fn similar_candidates_cluster_together() {
        // "neural network" and "neural networks" should fold into one topic,
        // so asking for 2 phrases does not return both variants.
        let phrases = extract_keyphrases(
            "neural network compression and neural networks pruning",
            &KeyphraseConfig {
                max_phrases: 2,
                ..Default::default()
            },
        );
        let count_neural = phrases.iter().filter(|p| p.contains("neural")).count();
        assert!(count_neural <= 1, "variants must cluster: {phrases:?}");
    }

    #[test]
    fn long_candidates_are_truncated() {
        let config = KeyphraseConfig {
            max_phrase_words: 2,
            ..Default::default()
        };
        let phrases = extract_keyphrases(
            "deep convolutional generative adversarial network training",
            &config,
        );
        for p in &phrases {
            assert!(p.split(' ').count() <= 2, "phrase too long: {p}");
        }
    }

    #[test]
    fn output_is_deterministic() {
        let title = "knowledge graph embedding methods a comprehensive survey";
        assert_eq!(extract_default(title), extract_default(title));
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Extraction never panics, never exceeds the configured phrase count,
        /// and every phrase is non-empty lowercase text.
        #[test]
        fn extraction_is_well_formed(text in "[a-zA-Z ]{0,120}", max in 1usize..6) {
            let config = KeyphraseConfig { max_phrases: max, ..Default::default() };
            let phrases = extract_keyphrases(&text, &config);
            prop_assert!(phrases.len() <= max);
            for p in &phrases {
                prop_assert!(!p.trim().is_empty());
                prop_assert_eq!(p.to_lowercase(), p.clone());
            }
        }
    }
}
