//! Lexical substrate for the Reading Path Generation reproduction.
//!
//! The paper's pipeline needs three text-level capabilities:
//!
//! 1. **Keyword retrieval** — the academic search engines it compares against
//!    (Google Scholar, Microsoft Academic, AMiner) "solely return the paper
//!    whose title contains query phrases".  [`inverted`], [`tfidf`] and
//!    [`bm25`] provide the inverted index and the ranking functions the
//!    simulated engines in `rpg-engines` are built on.
//! 2. **Keyphrase extraction** — SurveyBank's queries are key phrases
//!    extracted from survey titles with the TopicRank algorithm.
//!    [`keyphrase`] implements a TopicRank-style graph ranking over candidate
//!    phrases.
//! 3. **Semantic matching** — the SciBERT baseline scores query/paper
//!    similarity.  [`embed`] provides a deterministic hashed bag-of-features
//!    embedding with cosine similarity that plays the same role offline (see
//!    DESIGN.md for the substitution rationale).
//!
//! Everything here is corpus-agnostic: documents are just `(id, text fields)`
//! pairs, so the module is reusable for any document collection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bm25;
pub mod embed;
pub mod inverted;
pub mod keyphrase;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use bm25::{Bm25Index, Bm25Params};
pub use embed::{EmbeddingModel, EmbeddingParams};
pub use inverted::InvertedIndex;
pub use keyphrase::{extract_keyphrases, KeyphraseConfig};
pub use tfidf::TfIdfIndex;
pub use tokenize::{tokenize, Token};
pub use vocab::Vocabulary;

/// A document identifier inside a text index.  This mirrors the dense paper
/// ids used by `rpg-corpus`, but the index layer does not depend on the
/// corpus layer.
pub type DocId = u32;
