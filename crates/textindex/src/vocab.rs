//! Term vocabulary: interning of normalised terms to dense ids.
//!
//! All indexes in this crate share the pattern of mapping terms to dense
//! `u32` ids so that postings and per-term statistics can live in flat
//! vectors.  [`Vocabulary`] provides that interning.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense identifier for an interned term.
pub type TermId = u32;

/// A bidirectional term ↔ id mapping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    term_to_id: HashMap<String, TermId>,
    id_to_term: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = self.id_to_term.len() as TermId;
        self.id_to_term.push(term.to_string());
        self.term_to_id.insert(term.to_string(), id);
        id
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// The surface form of an interned id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.id_to_term.get(id as usize).map(String::as_str)
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.id_to_term
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("graph");
        let b = v.intern("graph");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("c"), 2);
        assert_eq!(v.term(1), Some("b"));
        assert_eq!(v.term(9), None);
    }

    #[test]
    fn lookup_of_unknown_term_is_none() {
        let v = Vocabulary::new();
        assert!(v.get("missing").is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn iter_covers_all_terms() {
        let mut v = Vocabulary::new();
        for t in ["x", "y", "z"] {
            v.intern(t);
        }
        let collected: Vec<_> = v.iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(collected, vec!["x", "y", "z"]);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every interned term round-trips through its id, and ids stay dense.
        #[test]
        fn round_trip(terms in prop::collection::vec("[a-z]{1,8}", 0..100)) {
            let mut v = Vocabulary::new();
            let ids: Vec<TermId> = terms.iter().map(|t| v.intern(t)).collect();
            for (term, id) in terms.iter().zip(&ids) {
                prop_assert_eq!(v.term(*id), Some(term.as_str()));
                prop_assert_eq!(v.get(term), Some(*id));
            }
            let distinct: std::collections::HashSet<_> = terms.iter().collect();
            prop_assert_eq!(v.len(), distinct.len());
        }
    }
}
