//! Hashed bag-of-features embeddings with cosine similarity.
//!
//! This is the offline stand-in for the paper's SciBERT matching baseline
//! (see DESIGN.md).  Each document (or query) is embedded into a fixed-size
//! dense vector by hashing its word unigrams, word bigrams and character
//! trigrams into buckets, weighting word features by inverse document
//! frequency learned from a fitting corpus.  Cosine similarity between query
//! and document embeddings then plays the role of the trained matching
//! model's score: it captures lexical-semantic overlap (shared vocabulary and
//! sub-word units) but — exactly like the baseline in the paper — knows
//! nothing about citation structure, which is why it under-performs NEWST on
//! prerequisite coverage.

use crate::similarity::cosine;
use crate::tokenize::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the embedding model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingParams {
    /// Dimensionality of the embedding vectors (number of hash buckets).
    pub dimensions: usize,
    /// Weight of word-unigram features.
    pub unigram_weight: f64,
    /// Weight of word-bigram features.
    pub bigram_weight: f64,
    /// Weight of character-trigram features (sub-word robustness).
    pub char_trigram_weight: f64,
}

impl Default for EmbeddingParams {
    fn default() -> Self {
        EmbeddingParams {
            dimensions: 256,
            unigram_weight: 1.0,
            bigram_weight: 0.75,
            char_trigram_weight: 0.25,
        }
    }
}

/// FNV-1a hash, fixed so embeddings are stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic text-embedding model.
///
/// Call [`EmbeddingModel::fit`] on a corpus to learn IDF weights, then
/// [`EmbeddingModel::embed`] / [`EmbeddingModel::similarity`] at query time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingModel {
    params: EmbeddingParams,
    idf: HashMap<String, f64>,
    fitted_docs: usize,
}

impl EmbeddingModel {
    /// Creates an unfitted model (all IDF weights default to 1).
    pub fn new(params: EmbeddingParams) -> Self {
        EmbeddingModel {
            params,
            idf: HashMap::new(),
            fitted_docs: 0,
        }
    }

    /// Creates a model with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(EmbeddingParams::default())
    }

    /// The parameters of the model.
    pub fn params(&self) -> EmbeddingParams {
        self.params
    }

    /// Number of documents the model was fitted on.
    pub fn fitted_docs(&self) -> usize {
        self.fitted_docs
    }

    /// Learns IDF weights from a corpus of documents.
    pub fn fit<'a, I: IntoIterator<Item = &'a str>>(&mut self, corpus: I) {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut n = 0usize;
        for doc in corpus {
            n += 1;
            let mut seen = std::collections::HashSet::new();
            for token in tokenize(doc) {
                if seen.insert(token.term.clone()) {
                    *df.entry(token.term).or_insert(0) += 1;
                }
            }
        }
        self.fitted_docs = n;
        self.idf = df
            .into_iter()
            .map(|(term, d)| {
                let idf = ((n as f64 + 1.0) / (d as f64 + 1.0)).ln() + 1.0;
                (term, idf)
            })
            .collect();
    }

    fn idf_of(&self, term: &str) -> f64 {
        self.idf.get(term).copied().unwrap_or_else(|| {
            // Unknown terms get the maximum possible IDF for the fitted size.
            ((self.fitted_docs as f64 + 1.0) / 1.0).ln() + 1.0
        })
    }

    fn bucket(&self, feature: &str) -> usize {
        (fnv1a(feature.as_bytes()) % self.params.dimensions as u64) as usize
    }

    /// Embeds `text` into an L2-normalised vector of `params.dimensions`
    /// components.  The zero vector is returned for texts with no usable
    /// tokens.
    pub fn embed(&self, text: &str) -> Vec<f64> {
        let mut vector = vec![0.0; self.params.dimensions];
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return vector;
        }

        for token in &tokens {
            let weight = self.params.unigram_weight * self.idf_of(&token.term);
            vector[self.bucket(&token.term)] += weight;
            if self.params.char_trigram_weight > 0.0 && token.term.len() >= 3 {
                let chars: Vec<char> = token.term.chars().collect();
                for window in chars.windows(3) {
                    let tri: String = window.iter().collect();
                    vector[self.bucket(&format!("#{tri}"))] += self.params.char_trigram_weight;
                }
            }
        }
        if self.params.bigram_weight > 0.0 {
            for pair in tokens.windows(2) {
                let bigram = format!("{}_{}", pair[0].term, pair[1].term);
                vector[self.bucket(&bigram)] += self.params.bigram_weight;
            }
        }

        let norm: f64 = vector.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut vector {
                *x /= norm;
            }
        }
        vector
    }

    /// Cosine similarity between the embeddings of two texts, in `[-1, 1]`
    /// (practically `[0, 1]` because all features are non-negative).
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted_model() -> EmbeddingModel {
        let corpus = [
            "hate speech detection in social media",
            "pretrained language models for text classification",
            "graph neural networks for molecules",
            "reinforcement learning for robotics",
            "survey of hate speech datasets",
        ];
        let mut m = EmbeddingModel::with_defaults();
        m.fit(corpus.iter().copied());
        m
    }

    #[test]
    fn embeddings_are_normalized() {
        let m = fitted_model();
        let v = m.embed("hate speech detection");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(v.len(), 256);
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let m = fitted_model();
        let v = m.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(m.similarity("", "hate speech"), 0.0);
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let m = fitted_model();
        let s = m.similarity("hate speech detection", "hate speech detection");
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn related_texts_score_higher_than_unrelated() {
        let m = fitted_model();
        let related = m.similarity("hate speech detection", "detecting hate speech on twitter");
        let unrelated = m.similarity(
            "hate speech detection",
            "graph neural networks for molecules",
        );
        assert!(
            related > unrelated,
            "related={related}, unrelated={unrelated}"
        );
    }

    #[test]
    fn embeddings_are_deterministic() {
        let m = fitted_model();
        assert_eq!(m.embed("language models"), m.embed("language models"));
    }

    #[test]
    fn fitting_records_corpus_size() {
        let m = fitted_model();
        assert_eq!(m.fitted_docs(), 5);
        let unfitted = EmbeddingModel::with_defaults();
        assert_eq!(unfitted.fitted_docs(), 0);
    }

    #[test]
    fn subword_features_give_partial_credit_for_morphological_variants() {
        let m = fitted_model();
        let variant = m.similarity("classification of documents", "document classifiers");
        let unrelated = m.similarity(
            "classification of documents",
            "quantum chromodynamics plasma",
        );
        assert!(variant > unrelated);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Similarity is symmetric and bounded.
        #[test]
        fn similarity_is_symmetric_and_bounded(a in "[a-z ]{0,60}", b in "[a-z ]{0,60}") {
            let m = EmbeddingModel::with_defaults();
            let ab = m.similarity(&a, &b);
            let ba = m.similarity(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((-1.0001..=1.0001).contains(&ab));
        }

        /// Every embedding is either the zero vector or unit length.
        #[test]
        fn embeddings_unit_or_zero(text in "[a-z ]{0,80}") {
            let m = EmbeddingModel::with_defaults();
            let v = m.embed(&text);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!(norm.abs() < 1e-9 || (norm - 1.0).abs() < 1e-9);
        }
    }
}
