//! Tokenisation and stop-word filtering.
//!
//! A small, deterministic tokenizer adequate for scholarly titles and
//! abstracts: lowercase, split on non-alphanumeric characters, drop pure
//! numbers shorter than 4 digits (page numbers, etc.), and optionally drop
//! English stop words.  A light suffix-stripping stemmer folds trivial
//! plural/inflection variants together so that "networks" matches "network".

use serde::{Deserialize, Serialize};

/// A single token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// Normalised (lowercased, stemmed) form used for indexing.
    pub term: String,
    /// Position of the token in the source text (0-based token offset).
    pub position: usize,
}

/// English stop words that carry no topical signal in scholarly titles.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "of", "in", "on", "for", "with", "to", "from", "by", "at", "as",
    "is", "are", "was", "were", "be", "been", "being", "this", "that", "these", "those", "it",
    "its", "we", "our", "their", "his", "her", "your", "via", "using", "based", "toward",
    "towards", "into", "over", "under", "between", "among", "about", "can", "may", "do", "does",
    "not", "no", "new", "novel", "approach", "method", "methods", "paper", "study",
];

/// Returns `true` if `term` is a stop word.
pub fn is_stop_word(term: &str) -> bool {
    STOP_WORDS.contains(&term)
}

/// A light stemmer: strips a handful of common English suffixes so that
/// surface variants of the same technical term collapse together.  This is
/// intentionally conservative (no Porter rules that mangle short technical
/// terms).
pub fn stem(term: &str) -> String {
    let mut t = term.to_string();
    // Order matters: longest suffixes first.
    for (suffix, min_len) in [
        ("ization", 9),
        ("ational", 9),
        ("ments", 7),
        ("ingly", 8),
        ("ities", 7),
        ("ing", 6),
        ("ions", 6),
        ("ies", 5),
        ("ers", 5),
        ("ed", 5),
        ("es", 5),
        ("s", 4),
    ] {
        if t.len() >= min_len && t.ends_with(suffix) {
            t.truncate(t.len() - suffix.len());
            break;
        }
    }
    t
}

/// Options controlling [`tokenize_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenizeOptions {
    /// Drop stop words.
    pub remove_stop_words: bool,
    /// Apply the light stemmer.
    pub stem: bool,
    /// Minimum length (in characters) of a kept token.
    pub min_len: usize,
}

impl Default for TokenizeOptions {
    fn default() -> Self {
        TokenizeOptions {
            remove_stop_words: true,
            stem: true,
            min_len: 2,
        }
    }
}

/// Tokenises `text` with the default options (stop-word removal + stemming).
pub fn tokenize(text: &str) -> Vec<Token> {
    tokenize_with(text, TokenizeOptions::default())
}

/// Tokenises `text` without dropping stop words or stemming; used by the
/// keyphrase extractor, which needs the full surface sequence.
pub fn tokenize_surface(text: &str) -> Vec<Token> {
    tokenize_with(
        text,
        TokenizeOptions {
            remove_stop_words: false,
            stem: false,
            min_len: 1,
        },
    )
}

/// Tokenises `text` with explicit options.
pub fn tokenize_with(text: &str, options: TokenizeOptions) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut position = 0usize;
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        let lower = raw.to_lowercase();
        let current_position = position;
        position += 1;
        if lower.len() < options.min_len {
            continue;
        }
        if lower.chars().all(|c| c.is_ascii_digit()) && lower.len() < 4 {
            continue;
        }
        if options.remove_stop_words && is_stop_word(&lower) {
            continue;
        }
        let term = if options.stem { stem(&lower) } else { lower };
        tokens.push(Token {
            term,
            position: current_position,
        });
    }
    tokens
}

/// Convenience: the distinct normalised terms of `text`, in first-seen order.
pub fn distinct_terms(text: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for token in tokenize(text) {
        if seen.insert(token.term.clone()) {
            out.push(token.term);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        let tokens = tokenize_surface("Hate-Speech Detection: A Survey!");
        let terms: Vec<_> = tokens.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(terms, vec!["hate", "speech", "detection", "a", "survey"]);
    }

    #[test]
    fn positions_count_all_surface_tokens() {
        let tokens = tokenize("deep learning for the masses");
        // "for" and "the" are stop words but still consume positions.
        let positions: Vec<_> = tokens.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 4]);
    }

    #[test]
    fn stop_words_are_removed_by_default() {
        let terms = distinct_terms("a survey of the state of the art");
        assert!(!terms.contains(&"the".to_string()));
        assert!(!terms.contains(&"of".to_string()));
        assert!(terms.contains(&"art".to_string()));
    }

    #[test]
    fn stemming_folds_plurals() {
        assert_eq!(stem("networks"), "network");
        assert_eq!(stem("embeddings"), "embedding");
        assert_eq!(stem("learning"), "learn");
        // Short technical terms are left alone.
        assert_eq!(stem("gan"), "gan");
        assert_eq!(stem("bert"), "bert");
    }

    #[test]
    fn stemmed_variants_collide() {
        let a = tokenize("graph neural networks");
        let b = tokenize("graph neural network");
        let ta: Vec<_> = a.iter().map(|t| &t.term).collect();
        let tb: Vec<_> = b.iter().map(|t| &t.term).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn short_numbers_are_dropped_but_years_kept() {
        let terms = distinct_terms("volume 7 of 2019 proceedings");
        assert!(!terms.contains(&"7".to_string()));
        assert!(terms.contains(&"2019".to_string()));
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ###").is_empty());
    }

    #[test]
    fn distinct_terms_preserve_first_seen_order() {
        let terms = distinct_terms("learning to learn: learning transfer");
        assert_eq!(terms[0], "learn");
        assert_eq!(terms.iter().filter(|t| t.as_str() == "learn").count(), 1);
        assert!(terms.contains(&"transfer".to_string()));
    }

    #[test]
    fn options_disable_stop_word_removal_and_stemming() {
        let tokens = tokenize_with(
            "the networks",
            TokenizeOptions {
                remove_stop_words: false,
                stem: false,
                min_len: 1,
            },
        );
        let terms: Vec<_> = tokens.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(terms, vec!["the", "networks"]);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Tokenisation never panics and always produces terms free of ASCII
        /// uppercase with monotonically increasing positions.
        #[test]
        fn tokens_are_normalized(text in ".{0,200}") {
            let tokens = tokenize(&text);
            let mut last = None;
            for t in &tokens {
                prop_assert!(t.term.chars().all(|c| !c.is_ascii_uppercase()));
                prop_assert!(!t.term.is_empty());
                if let Some(prev) = last {
                    prop_assert!(t.position > prev);
                }
                last = Some(t.position);
            }
        }

        /// Surface tokenisation (no stemming / stop-word removal) is stable
        /// under re-joining: tokenising the joined terms yields the same
        /// sequence of terms.
        #[test]
        fn retokenizing_terms_is_stable(text in "[a-zA-Z ]{0,120}") {
            let options = TokenizeOptions { remove_stop_words: false, stem: false, min_len: 1 };
            let first: Vec<String> =
                tokenize_with(&text, options).into_iter().map(|t| t.term).collect();
            let joined = first.join(" ");
            let second: Vec<String> =
                tokenize_with(&joined, options).into_iter().map(|t| t.term).collect();
            prop_assert_eq!(first, second);
        }
    }
}
