//! The semantic matching baseline (SciBERT stand-in).
//!
//! The paper trains a SciBERT-based matching model that scores how well a
//! query matches a paper's title and abstract, then re-ranks the expanded
//! seed set with it.  Offline, the same role is played by the deterministic
//! hashed-embedding model of `rpg-textindex` fitted on the corpus: it
//! captures lexical-semantic similarity between the query and the paper text
//! but knows nothing about citation structure, which is exactly the property
//! the comparison in Fig. 8 exercises (semantic matching alone misses
//! prerequisite papers that share no vocabulary with the query).

use crate::engine::{Query, SearchEngine};
use crate::scholar::ScholarEngine;
use rpg_corpus::{Corpus, PaperId};
use rpg_graph::traversal::{expand, Direction};
use rpg_graph::CitationGraph;
use rpg_textindex::embed::{EmbeddingModel, EmbeddingParams};
use rpg_textindex::similarity::cosine;
use std::sync::Arc;

/// The semantic matching baseline.
pub struct SemanticMatcher {
    scholar: ScholarEngine,
    graph: Arc<CitationGraph>,
    model: EmbeddingModel,
    /// Pre-computed document embeddings, indexed by paper id.
    embeddings: Vec<Vec<f64>>,
    years: Vec<u16>,
    /// Number of seed papers taken from the scholar engine.
    pub seed_count: usize,
    /// Expansion depth before re-ranking.
    pub expansion_hops: u8,
}

impl SemanticMatcher {
    /// Builds the matcher: fits the embedding model on every paper's text and
    /// pre-computes document embeddings.
    pub fn build(corpus: &Corpus, scholar: ScholarEngine) -> Self {
        Self::build_with_params(corpus, scholar, EmbeddingParams::default())
    }

    /// Builds the matcher with explicit embedding parameters.
    pub fn build_with_params(
        corpus: &Corpus,
        scholar: ScholarEngine,
        params: EmbeddingParams,
    ) -> Self {
        let mut model = EmbeddingModel::new(params);
        let texts: Vec<String> = corpus.papers().iter().map(|p| p.indexed_text()).collect();
        model.fit(texts.iter().map(String::as_str));
        let embeddings = texts.iter().map(|t| model.embed(t)).collect();
        SemanticMatcher {
            scholar,
            graph: Arc::new(corpus.graph().clone()),
            model,
            embeddings,
            years: corpus.papers().iter().map(|p| p.year).collect(),
            seed_count: 30,
            expansion_hops: 2,
        }
    }

    fn year(&self, paper: PaperId) -> u16 {
        self.years.get(paper.index()).copied().unwrap_or(0)
    }

    /// The matching score between a query and a paper, in `[0, 1]`.
    pub fn match_score(&self, query_embedding: &[f64], paper: PaperId) -> f64 {
        self.embeddings
            .get(paper.index())
            .map(|e| cosine(query_embedding, e))
            .unwrap_or(0.0)
    }

    /// The candidate set: Scholar seeds plus 1st/2nd-order citation
    /// neighbours, filtered by the query.
    pub fn candidates(&self, query: &Query<'_>) -> Vec<PaperId> {
        let seed_query = Query {
            top_k: self.seed_count,
            ..*query
        };
        let seeds = self.scholar.seed_papers(&seed_query);
        let seed_nodes: Vec<_> = seeds.iter().map(|p| p.node()).collect();
        let expansion = expand(
            &self.graph,
            &seed_nodes,
            self.expansion_hops,
            Direction::References,
        )
        .expect("seed papers come from the same corpus as the graph");
        expansion
            .nodes
            .into_iter()
            .map(PaperId::from_node)
            .filter(|&p| query.admits(p, self.year(p)))
            .collect()
    }
}

impl SearchEngine for SemanticMatcher {
    fn name(&self) -> &'static str {
        "SciBERT (semantic matcher)"
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        let query_embedding = self.model.embed(query.text);
        let mut candidates = self.candidates(query);
        candidates.sort_by(|&a, &b| {
            self.match_score(&query_embedding, b)
                .partial_cmp(&self.match_score(&query_embedding, a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        candidates.truncate(query.top_k);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineIndex;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 37,
            ..CorpusConfig::small()
        })
    }

    fn matcher(c: &Corpus) -> SemanticMatcher {
        SemanticMatcher::build(c, ScholarEngine::from_index(EngineIndex::build(c)))
    }

    #[test]
    fn results_are_semantically_on_topic() {
        let c = corpus();
        let m = matcher(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let results = m.search(&Query::simple(&survey.query, 20));
        assert!(!results.is_empty());
        let survey_topic = c.paper(survey.paper).unwrap().topic;
        let related: std::collections::HashSet<_> = c
            .topics()
            .prerequisite_closure(survey_topic)
            .into_iter()
            .chain(std::iter::once(survey_topic))
            .collect();
        let on_topic_fraction = |papers: &[PaperId]| {
            papers
                .iter()
                .filter(|&&p| {
                    c.paper(p)
                        .map(|x| related.contains(&x.topic))
                        .unwrap_or(false)
                })
                .count() as f64
                / papers.len().max(1) as f64
        };
        // Re-ranking by semantic similarity should concentrate on-topic papers
        // at the top compared with the raw expanded candidate pool.
        let candidates = m.candidates(&Query::simple(&survey.query, 20));
        assert!(
            on_topic_fraction(&results) >= on_topic_fraction(&candidates),
            "semantic re-ranking should not dilute topical relevance ({:.2} vs {:.2})",
            on_topic_fraction(&results),
            on_topic_fraction(&candidates)
        );
    }

    #[test]
    fn ranking_follows_match_score() {
        let c = corpus();
        let m = matcher(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let q = Query::simple(&survey.query, 15);
        let results = m.search(&q);
        let qe = m.model.embed(&survey.query);
        for pair in results.windows(2) {
            assert!(m.match_score(&qe, pair[0]) >= m.match_score(&qe, pair[1]) - 1e-12);
        }
    }

    #[test]
    fn respects_query_filters() {
        let c = corpus();
        let m = matcher(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let exclude = [survey.paper];
        let results = m.search(&Query {
            text: &survey.query,
            top_k: 25,
            max_year: Some(survey.year),
            exclude: &exclude,
        });
        assert!(results.len() <= 25);
        assert!(!results.contains(&survey.paper));
        for p in results {
            assert!(c.year(p) <= survey.year);
        }
    }

    #[test]
    fn name_mentions_scibert_substitute() {
        let c = corpus();
        assert!(matcher(&c).name().contains("SciBERT"));
    }
}
