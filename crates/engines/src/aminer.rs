//! The AMiner-like engine.
//!
//! Differentiated from the other two simulated engines by using log-TF-IDF
//! scoring (rather than BM25) and a stronger citation prior, reflecting
//! AMiner's emphasis on scholarly impact metrics.

use crate::engine::{
    EngineIndex, LexicalConfig, LexicalEngine, LexicalScoring, Query, SearchEngine,
};
use rpg_corpus::{Corpus, PaperId};
use std::sync::Arc;

/// The simulated AMiner engine.
#[derive(Debug, Clone)]
pub struct AminerEngine {
    inner: LexicalEngine,
}

impl AminerEngine {
    /// The ranking configuration characterising this engine.
    pub fn config() -> LexicalConfig {
        LexicalConfig {
            scoring: LexicalScoring::TfIdf,
            title_boost: 2.0,
            citation_weight: 0.6,
            recency_weight: 0.0,
        }
    }

    /// Builds the engine over a corpus.
    pub fn build(corpus: &Corpus) -> Self {
        Self::from_index(EngineIndex::build(corpus))
    }

    /// Builds the engine from an already-built shared index.
    pub fn from_index(index: Arc<EngineIndex>) -> Self {
        AminerEngine {
            inner: LexicalEngine::new(index, "AMiner (simulated)", Self::config()),
        }
    }
}

impl SearchEngine for AminerEngine {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        self.inner.search(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 35,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn returns_results_for_survey_queries() {
        let c = corpus();
        let engine = AminerEngine::build(&c);
        let mut non_empty = 0;
        for survey in c.survey_bank().iter().take(10) {
            if !engine.search(&Query::simple(&survey.query, 20)).is_empty() {
                non_empty += 1;
            }
        }
        assert!(
            non_empty >= 8,
            "AMiner simulation failed on too many queries: {non_empty}/10"
        );
    }

    #[test]
    fn respects_top_k_and_year_cutoff() {
        let c = corpus();
        let engine = AminerEngine::build(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let results = engine.search(&Query {
            text: &survey.query,
            top_k: 10,
            max_year: Some(survey.year),
            exclude: &[],
        });
        assert!(results.len() <= 10);
        for p in results {
            assert!(c.year(p) <= survey.year);
        }
    }

    #[test]
    fn name_identifies_the_engine() {
        let c = corpus();
        assert!(AminerEngine::build(&c).name().contains("AMiner"));
    }
}
