//! Simulated academic search engines and retrieval baselines.
//!
//! The paper compares RePaGer/NEWST against five retrieval baselines
//! (Section VI-A):
//!
//! * **Google Scholar**, **Microsoft Academic**, **AMiner** — keyword search
//!   engines whose top-K results form the comparison lists (and, for Google
//!   Scholar, the initial seed papers of the RePaGer pipeline).  These are
//!   simulated here as lexical retrieval engines over the synthetic corpus,
//!   each with its own ranking idiosyncrasy ([`scholar`], [`msacademic`],
//!   [`aminer`]).
//! * **PageRank** — expand the Scholar seeds to their citation neighbours and
//!   re-rank everything by global PageRank ([`pagerank_baseline`]).
//! * **SciBERT** — expand the seeds and re-rank by semantic similarity
//!   between the query and each paper's title/abstract; reproduced by the
//!   hashed-embedding matcher in [`semantic`] (see DESIGN.md for the
//!   substitution rationale).
//!
//! All methods implement the [`SearchEngine`] trait so the evaluation harness
//! can treat them uniformly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aminer;
pub mod engine;
pub mod msacademic;
pub mod pagerank_baseline;
pub mod scholar;
pub mod semantic;

pub use aminer::AminerEngine;
pub use engine::{EngineIndex, LexicalConfig, LexicalEngine, Query, SearchEngine};
pub use msacademic::MsAcademicEngine;
pub use pagerank_baseline::PageRankBaseline;
pub use scholar::ScholarEngine;
pub use semantic::SemanticMatcher;
