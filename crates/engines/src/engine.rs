//! The common retrieval interface and the shared corpus index.
//!
//! Every baseline (and the seed-paper stage of RePaGer itself) answers the
//! same question: *given a query string, return a ranked list of papers
//! published no later than a cut-off year*.  [`SearchEngine`] is that
//! interface; [`EngineIndex`] is the shared, pre-built index over a corpus
//! that the concrete engines borrow; [`LexicalEngine`] is the configurable
//! keyword-retrieval core that the three simulated academic search engines
//! are thin wrappers around.

use rpg_corpus::{Corpus, PaperId};
use rpg_textindex::bm25::{Bm25Index, Bm25Params};
use rpg_textindex::inverted::InvertedIndex;
use rpg_textindex::tfidf::{sort_ranking, ScoredDoc, TfIdfIndex};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A retrieval request.
#[derive(Debug, Clone, Copy)]
pub struct Query<'a> {
    /// The query text (key phrases joined by spaces).
    pub text: &'a str,
    /// Number of papers to return.
    pub top_k: usize,
    /// Only papers published in or before this year are eligible (the
    /// evaluation restricts candidates to papers published before the survey,
    /// Section VI-A).  `None` disables the restriction.
    pub max_year: Option<u16>,
    /// Papers that must never be returned (e.g. the survey the query was
    /// derived from, to avoid data leakage).
    pub exclude: &'a [PaperId],
}

impl<'a> Query<'a> {
    /// A query with no year restriction and no exclusions.
    pub fn simple(text: &'a str, top_k: usize) -> Self {
        Query {
            text,
            top_k,
            max_year: None,
            exclude: &[],
        }
    }

    /// Whether a paper passes the year and exclusion filters.
    pub fn admits(&self, paper: PaperId, year: u16) -> bool {
        if self.exclude.contains(&paper) {
            return false;
        }
        match self.max_year {
            Some(cutoff) => year <= cutoff,
            None => true,
        }
    }
}

/// A retrieval method returning a ranked paper list for a query.
pub trait SearchEngine {
    /// Human-readable method name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Returns up to `query.top_k` papers ranked by decreasing relevance.
    fn search(&self, query: &Query<'_>) -> Vec<PaperId>;
}

/// The shared per-corpus index: inverted text index plus the per-paper
/// metadata the engines need for filtering and ranking priors.
#[derive(Debug)]
pub struct EngineIndex {
    inverted: InvertedIndex,
    years: Vec<u16>,
    citation_counts: Vec<u32>,
    is_survey: Vec<bool>,
}

impl EngineIndex {
    /// Builds the index over every paper of the corpus (titles + abstracts).
    pub fn build(corpus: &Corpus) -> Arc<Self> {
        let mut inverted = InvertedIndex::new();
        let mut years = Vec::with_capacity(corpus.len());
        let mut citation_counts = Vec::with_capacity(corpus.len());
        let mut is_survey = Vec::with_capacity(corpus.len());
        for paper in corpus.papers() {
            inverted.add_document(paper.id.0, &paper.title, &paper.abstract_text);
            years.push(paper.year);
            citation_counts.push(corpus.citation_count(paper.id) as u32);
            is_survey.push(paper.is_survey());
        }
        Arc::new(EngineIndex {
            inverted,
            years,
            citation_counts,
            is_survey,
        })
    }

    /// Assembles the index from a pre-built inverted index (e.g. decoded
    /// from a snapshot), rebuilding only the cheap per-paper metadata
    /// columns from the corpus.  The caller is responsible for the inverted
    /// index actually covering this corpus; `decode` paths guard that with
    /// checksums and a document-count check.
    pub fn with_inverted(corpus: &Corpus, inverted: InvertedIndex) -> Arc<Self> {
        let mut years = Vec::with_capacity(corpus.len());
        let mut citation_counts = Vec::with_capacity(corpus.len());
        let mut is_survey = Vec::with_capacity(corpus.len());
        for paper in corpus.papers() {
            years.push(paper.year);
            citation_counts.push(corpus.citation_count(paper.id) as u32);
            is_survey.push(paper.is_survey());
        }
        Arc::new(EngineIndex {
            inverted,
            years,
            citation_counts,
            is_survey,
        })
    }

    /// Number of indexed papers.
    pub fn len(&self) -> usize {
        self.years.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.years.is_empty()
    }

    /// The underlying inverted index.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Publication year of a paper (0 if unknown).
    pub fn year(&self, paper: PaperId) -> u16 {
        self.years.get(paper.index()).copied().unwrap_or(0)
    }

    /// Citation count of a paper at index-build time.
    pub fn citation_count(&self, paper: PaperId) -> u32 {
        self.citation_counts
            .get(paper.index())
            .copied()
            .unwrap_or(0)
    }

    /// Whether a paper is a survey.
    pub fn is_survey(&self, paper: PaperId) -> bool {
        self.is_survey.get(paper.index()).copied().unwrap_or(false)
    }
}

/// Which lexical scoring function a [`LexicalEngine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LexicalScoring {
    /// Okapi BM25 over title + abstract.
    Bm25,
    /// Log-TF-IDF over title + abstract.
    TfIdf,
}

/// Configuration of a lexical retrieval engine.  The three simulated academic
/// search engines differ only in these knobs, mirroring how real engines rank
/// with the same lexical core but different priors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LexicalConfig {
    /// Scoring function.
    pub scoring: LexicalScoring,
    /// Boost applied to title matches relative to abstract matches.
    pub title_boost: f64,
    /// Weight of the `ln(1 + citations)` prior added to the lexical score.
    pub citation_weight: f64,
    /// Weight of the recency prior `(year - 1990) / 30` added to the score.
    pub recency_weight: f64,
}

/// A keyword retrieval engine over an [`EngineIndex`].
#[derive(Debug, Clone)]
pub struct LexicalEngine {
    index: Arc<EngineIndex>,
    config: LexicalConfig,
    name: &'static str,
}

impl LexicalEngine {
    /// Creates a lexical engine with an explicit name and configuration.
    pub fn new(index: Arc<EngineIndex>, name: &'static str, config: LexicalConfig) -> Self {
        LexicalEngine {
            index,
            config,
            name,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> LexicalConfig {
        self.config
    }

    /// Scores all candidate papers for the query (before truncation), with
    /// filters applied.  Exposed so the RePaGer seed stage can reuse it.
    pub fn ranked_candidates(&self, query: &Query<'_>) -> Vec<ScoredDoc> {
        let lexical: Vec<ScoredDoc> = match self.config.scoring {
            LexicalScoring::Bm25 => {
                let bm25 = Bm25Index::new(
                    self.index.inverted(),
                    Bm25Params {
                        title_boost: self.config.title_boost,
                        ..Default::default()
                    },
                );
                bm25.search(query.text, usize::MAX)
            }
            LexicalScoring::TfIdf => {
                let tfidf = TfIdfIndex::new(self.index.inverted(), self.config.title_boost);
                tfidf.search(query.text, usize::MAX)
            }
        };
        let mut scored: Vec<ScoredDoc> = lexical
            .into_iter()
            .filter(|s| query.admits(PaperId(s.doc), self.index.year(PaperId(s.doc))))
            .map(|s| {
                let paper = PaperId(s.doc);
                let citation_prior = self.config.citation_weight
                    * f64::from(self.index.citation_count(paper)).ln_1p();
                let recency_prior = self.config.recency_weight
                    * (f64::from(self.index.year(paper).saturating_sub(1990)) / 30.0);
                ScoredDoc {
                    doc: s.doc,
                    score: s.score + citation_prior + recency_prior,
                }
            })
            .collect();
        sort_ranking(&mut scored);
        scored
    }
}

impl SearchEngine for LexicalEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        self.ranked_candidates(query)
            .into_iter()
            .take(query.top_k)
            .map(|s| PaperId(s.doc))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 21,
            ..CorpusConfig::small()
        })
    }

    fn engine(corpus: &Corpus) -> LexicalEngine {
        LexicalEngine::new(
            EngineIndex::build(corpus),
            "test-engine",
            LexicalConfig {
                scoring: LexicalScoring::Bm25,
                title_boost: 3.0,
                citation_weight: 0.2,
                recency_weight: 0.0,
            },
        )
    }

    #[test]
    fn index_covers_every_paper() {
        let c = corpus();
        let idx = EngineIndex::build(&c);
        assert_eq!(idx.len(), c.len());
        assert!(!idx.is_empty());
        let any_survey = c.survey_bank().iter().next().unwrap().paper;
        assert!(idx.is_survey(any_survey));
        assert_eq!(idx.year(any_survey), c.year(any_survey));
    }

    #[test]
    fn with_inverted_matches_a_full_build() {
        let c = corpus();
        let built = EngineIndex::build(&c);
        let rebuilt = EngineIndex::with_inverted(&c, built.inverted().clone());
        assert_eq!(rebuilt.len(), built.len());
        for paper in c.papers() {
            assert_eq!(rebuilt.year(paper.id), built.year(paper.id));
            assert_eq!(
                rebuilt.citation_count(paper.id),
                built.citation_count(paper.id)
            );
            assert_eq!(rebuilt.is_survey(paper.id), built.is_survey(paper.id));
        }
        // The same engine over both indexes ranks identically.
        let survey = c.survey_bank().iter().next().unwrap();
        let config = LexicalConfig {
            scoring: LexicalScoring::Bm25,
            title_boost: 3.0,
            citation_weight: 0.2,
            recency_weight: 0.0,
        };
        let a = LexicalEngine::new(built, "a", config).search(&Query::simple(&survey.query, 20));
        let b = LexicalEngine::new(rebuilt, "b", config).search(&Query::simple(&survey.query, 20));
        assert_eq!(a, b);
    }

    #[test]
    fn query_filters_apply() {
        let q = Query {
            text: "x",
            top_k: 5,
            max_year: Some(2000),
            exclude: &[PaperId(3)],
        };
        assert!(q.admits(PaperId(1), 1999));
        assert!(!q.admits(PaperId(1), 2001));
        assert!(!q.admits(PaperId(3), 1999));
        let open = Query::simple("x", 5);
        assert!(open.admits(PaperId(3), 2030));
    }

    #[test]
    fn search_returns_topically_relevant_papers() {
        let c = corpus();
        let e = engine(&c);
        let survey = c
            .survey_bank()
            .iter()
            .find(|s| s.query.contains("hate"))
            .or_else(|| c.survey_bank().iter().next())
            .unwrap();
        let results = e.search(&Query::simple(&survey.query, 20));
        assert!(!results.is_empty());
        // The survey's own topic should dominate the top results.
        let survey_topic = c.paper(survey.paper).unwrap().topic;
        let same_topic = results
            .iter()
            .filter(|&&p| c.paper(p).map(|x| x.topic == survey_topic).unwrap_or(false))
            .count();
        assert!(
            same_topic * 2 >= results.len(),
            "only {same_topic}/{} results on topic for query '{}'",
            results.len(),
            survey.query
        );
    }

    #[test]
    fn year_cutoff_excludes_recent_papers() {
        let c = corpus();
        let e = engine(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let results = e.search(&Query {
            text: &survey.query,
            top_k: 30,
            max_year: Some(2005),
            exclude: &[],
        });
        for p in results {
            assert!(c.year(p) <= 2005);
        }
    }

    #[test]
    fn exclusion_removes_the_survey_itself() {
        let c = corpus();
        let e = engine(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let exclude = [survey.paper];
        let results = e.search(&Query {
            text: &survey.query,
            top_k: 50,
            max_year: None,
            exclude: &exclude,
        });
        assert!(!results.contains(&survey.paper));
    }

    #[test]
    fn top_k_truncates() {
        let c = corpus();
        let e = engine(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        assert!(e.search(&Query::simple(&survey.query, 7)).len() <= 7);
    }

    #[test]
    fn citation_prior_changes_ranking() {
        let c = corpus();
        let idx = EngineIndex::build(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let flat = LexicalEngine::new(
            idx.clone(),
            "flat",
            LexicalConfig {
                scoring: LexicalScoring::Bm25,
                title_boost: 3.0,
                citation_weight: 0.0,
                recency_weight: 0.0,
            },
        );
        let cite_heavy = LexicalEngine::new(
            idx,
            "cite-heavy",
            LexicalConfig {
                scoring: LexicalScoring::Bm25,
                title_boost: 3.0,
                citation_weight: 5.0,
                recency_weight: 0.0,
            },
        );
        let a = flat.search(&Query::simple(&survey.query, 20));
        let b = cite_heavy.search(&Query::simple(&survey.query, 20));
        assert_ne!(a, b, "a large citation prior should reorder results");
    }
}
