//! The Microsoft-Academic-like engine.
//!
//! Differentiated from the Scholar simulation by a milder title bias and a
//! stronger recency prior (Microsoft Academic's saliency ranking favoured
//! recent activity), so the three engines return visibly different — but all
//! purely lexical — top-K lists, as in the paper's comparison.

use crate::engine::{
    EngineIndex, LexicalConfig, LexicalEngine, LexicalScoring, Query, SearchEngine,
};
use rpg_corpus::{Corpus, PaperId};
use std::sync::Arc;

/// The simulated Microsoft Academic engine.
#[derive(Debug, Clone)]
pub struct MsAcademicEngine {
    inner: LexicalEngine,
}

impl MsAcademicEngine {
    /// The ranking configuration characterising this engine.
    pub fn config() -> LexicalConfig {
        LexicalConfig {
            scoring: LexicalScoring::Bm25,
            title_boost: 2.5,
            citation_weight: 0.20,
            recency_weight: 0.40,
        }
    }

    /// Builds the engine over a corpus.
    pub fn build(corpus: &Corpus) -> Self {
        Self::from_index(EngineIndex::build(corpus))
    }

    /// Builds the engine from an already-built shared index.
    pub fn from_index(index: Arc<EngineIndex>) -> Self {
        MsAcademicEngine {
            inner: LexicalEngine::new(index, "Microsoft Academic (simulated)", Self::config()),
        }
    }
}

impl SearchEngine for MsAcademicEngine {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        self.inner.search(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scholar::ScholarEngine;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 34,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn results_differ_from_scholar_but_overlap() {
        let c = corpus();
        let idx = EngineIndex::build(&c);
        let msa = MsAcademicEngine::from_index(idx.clone());
        let scholar = ScholarEngine::from_index(idx);
        let survey = c.survey_bank().iter().next().unwrap();
        let q = Query::simple(&survey.query, 30);
        let a = msa.search(&q);
        let b = scholar.search(&q);
        assert!(!a.is_empty() && !b.is_empty());
        let shared = a.iter().filter(|p| b.contains(p)).count();
        assert!(
            shared > 0,
            "two lexical engines should agree on some papers"
        );
        assert_ne!(a, b, "different priors should produce different orderings");
    }

    #[test]
    fn recency_prior_prefers_newer_papers_on_average() {
        let c = corpus();
        let idx = EngineIndex::build(&c);
        let msa = MsAcademicEngine::from_index(idx.clone());
        let scholar = ScholarEngine::from_index(idx);
        let mut msa_years = 0.0;
        let mut scholar_years = 0.0;
        let mut samples = 0.0;
        for survey in c.survey_bank().iter().take(8) {
            let q = Query::simple(&survey.query, 20);
            let a = msa.search(&q);
            let b = scholar.search(&q);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            msa_years += a.iter().map(|&p| f64::from(c.year(p))).sum::<f64>() / a.len() as f64;
            scholar_years += b.iter().map(|&p| f64::from(c.year(p))).sum::<f64>() / b.len() as f64;
            samples += 1.0;
        }
        assert!(samples > 0.0);
        assert!(
            msa_years / samples >= scholar_years / samples - 0.5,
            "recency-prior engine should not return older papers on average"
        );
    }

    #[test]
    fn name_identifies_the_engine() {
        let c = corpus();
        assert!(MsAcademicEngine::build(&c).name().contains("Microsoft"));
    }
}
