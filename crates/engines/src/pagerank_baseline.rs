//! The PageRank re-ranking baseline.
//!
//! As in the paper (Section VI-A): "we first expand initial seed nodes
//! returned from Google Scholar to their neighbours as candidates, and then
//! the PageRank algorithm is applied to reorder initial seeds and expanded
//! candidates together".  The expected failure mode — which the evaluation
//! reproduces — is that PageRank "always returns the papers whose citation
//! number is the largest", regardless of topical relevance.

use crate::engine::{Query, SearchEngine};
use crate::scholar::ScholarEngine;
use rpg_corpus::{Corpus, PaperId};
use rpg_graph::pagerank::{pagerank_default, PageRankScores};
use rpg_graph::traversal::{expand, Direction};
use rpg_graph::CitationGraph;
use std::sync::Arc;

/// The PageRank re-ranking baseline.
pub struct PageRankBaseline {
    scholar: ScholarEngine,
    graph: Arc<CitationGraph>,
    scores: PageRankScores,
    years: Vec<u16>,
    /// Number of seed papers taken from the scholar engine.
    pub seed_count: usize,
    /// Expansion depth (the paper uses 1st- and 2nd-order neighbours).
    pub expansion_hops: u8,
}

impl PageRankBaseline {
    /// Builds the baseline: global PageRank over the whole citation graph plus
    /// a Scholar engine for seeds.
    pub fn build(corpus: &Corpus, scholar: ScholarEngine) -> Self {
        let graph = Arc::new(corpus.graph().clone());
        let scores = pagerank_default(&graph).expect("default PageRank configuration is valid");
        let years = corpus.papers().iter().map(|p| p.year).collect();
        PageRankBaseline {
            scholar,
            graph,
            scores,
            years,
            seed_count: 30,
            expansion_hops: 2,
        }
    }

    fn year(&self, paper: PaperId) -> u16 {
        self.years.get(paper.index()).copied().unwrap_or(0)
    }

    /// The candidate set: seeds plus their 1st/2nd-order citation neighbours,
    /// filtered by the query's year cut-off and exclusions.
    pub fn candidates(&self, query: &Query<'_>) -> Vec<PaperId> {
        let seed_query = Query {
            top_k: self.seed_count,
            ..*query
        };
        let seeds = self.scholar.seed_papers(&seed_query);
        let seed_nodes: Vec<_> = seeds.iter().map(|p| p.node()).collect();
        let expansion = expand(
            &self.graph,
            &seed_nodes,
            self.expansion_hops,
            Direction::References,
        )
        .expect("seed papers come from the same corpus as the graph");
        expansion
            .nodes
            .into_iter()
            .map(PaperId::from_node)
            .filter(|&p| query.admits(p, self.year(p)))
            .collect()
    }
}

impl SearchEngine for PageRankBaseline {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        let mut candidates = self.candidates(query);
        candidates.sort_by(|a, b| {
            self.scores
                .score(b.node())
                .partial_cmp(&self.scores.score(a.node()))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        candidates.truncate(query.top_k);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineIndex;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 36,
            ..CorpusConfig::small()
        })
    }

    fn baseline(c: &Corpus) -> PageRankBaseline {
        PageRankBaseline::build(c, ScholarEngine::from_index(EngineIndex::build(c)))
    }

    #[test]
    fn expansion_grows_the_candidate_set() {
        let c = corpus();
        let b = baseline(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let q = Query::simple(&survey.query, 30);
        let candidates = b.candidates(&q);
        assert!(
            candidates.len() > 30,
            "expansion should add papers beyond the 30 seeds, got {}",
            candidates.len()
        );
    }

    #[test]
    fn results_are_sorted_by_pagerank() {
        let c = corpus();
        let b = baseline(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let results = b.search(&Query::simple(&survey.query, 25));
        for pair in results.windows(2) {
            assert!(b.scores.score(pair[0].node()) >= b.scores.score(pair[1].node()));
        }
    }

    #[test]
    fn returns_globally_popular_papers() {
        // The documented failure mode: heavily cited papers dominate.
        let c = corpus();
        let b = baseline(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let results = b.search(&Query::simple(&survey.query, 20));
        let avg_citations: f64 = results
            .iter()
            .map(|&p| c.citation_count(p) as f64)
            .sum::<f64>()
            / results.len().max(1) as f64;
        let corpus_avg: f64 = c
            .papers()
            .iter()
            .map(|p| c.citation_count(p.id) as f64)
            .sum::<f64>()
            / c.len() as f64;
        assert!(
            avg_citations > corpus_avg,
            "PageRank results ({avg_citations:.2}) should be more cited than average ({corpus_avg:.2})"
        );
    }

    #[test]
    fn respects_filters_and_top_k() {
        let c = corpus();
        let b = baseline(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let exclude = [survey.paper];
        let results = b.search(&Query {
            text: &survey.query,
            top_k: 15,
            max_year: Some(survey.year),
            exclude: &exclude,
        });
        assert!(results.len() <= 15);
        assert!(!results.contains(&survey.paper));
        for p in results {
            assert!(c.year(p) <= survey.year);
        }
    }

    #[test]
    fn name_is_pagerank() {
        let c = corpus();
        assert_eq!(baseline(&c).name(), "PageRank");
    }
}
