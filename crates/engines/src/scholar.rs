//! The Google-Scholar-like engine.
//!
//! Google Scholar's observable behaviour in the paper's setting: keyword
//! matching dominated by the title, with heavily cited papers floating up.
//! This engine is also the seed-paper source for the RePaGer pipeline (Step 1
//! of Section IV-A), so it exposes the underlying [`LexicalEngine`] for
//! callers that need the full ranking rather than the truncated list.

use crate::engine::{
    EngineIndex, LexicalConfig, LexicalEngine, LexicalScoring, Query, SearchEngine,
};
use rpg_corpus::{Corpus, PaperId};
use std::sync::Arc;

/// The simulated Google Scholar engine.
#[derive(Debug, Clone)]
pub struct ScholarEngine {
    inner: LexicalEngine,
}

impl ScholarEngine {
    /// The ranking configuration that characterises this engine: strong title
    /// bias plus a citation-count prior.
    pub fn config() -> LexicalConfig {
        LexicalConfig {
            scoring: LexicalScoring::Bm25,
            title_boost: 4.0,
            citation_weight: 0.35,
            recency_weight: 0.05,
        }
    }

    /// Builds the engine over a corpus.
    pub fn build(corpus: &Corpus) -> Self {
        Self::from_index(EngineIndex::build(corpus))
    }

    /// Builds the engine from an already-built shared index.
    pub fn from_index(index: Arc<EngineIndex>) -> Self {
        ScholarEngine {
            inner: LexicalEngine::new(index, "Google Scholar (simulated)", Self::config()),
        }
    }

    /// The underlying lexical engine (used by the RePaGer seed stage).
    pub fn lexical(&self) -> &LexicalEngine {
        &self.inner
    }

    /// Convenience wrapper returning the top-K seed papers for RePaGer.
    pub fn seed_papers(&self, query: &Query<'_>) -> Vec<PaperId> {
        self.inner.search(query)
    }
}

impl SearchEngine for ScholarEngine {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn search(&self, query: &Query<'_>) -> Vec<PaperId> {
        self.inner.search(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_corpus::{generate, CorpusConfig, LabelLevel};

    fn corpus() -> Corpus {
        generate(&CorpusConfig {
            seed: 33,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn returns_requested_number_of_seeds() {
        let c = corpus();
        let engine = ScholarEngine::build(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        let seeds = engine.seed_papers(&Query::simple(&survey.query, 30));
        assert!(seeds.len() <= 30);
        assert!(
            seeds.len() >= 10,
            "query '{}' found only {} seeds",
            survey.query,
            seeds.len()
        );
    }

    #[test]
    fn overlap_with_ground_truth_is_partial() {
        // Observation I: the engine's top results overlap the survey's
        // reference list only partially.  Sanity-check that the overlap is
        // neither zero for every survey (the engine does find on-topic
        // papers) nor complete (prerequisite papers are missed).
        let c = corpus();
        let engine = ScholarEngine::build(&c);
        let mut any_overlap = false;
        let mut any_miss = false;
        for survey in c.survey_bank().iter().take(10) {
            let exclude = [survey.paper];
            let results = engine.search(&Query {
                text: &survey.query,
                top_k: 30,
                max_year: Some(survey.year),
                exclude: &exclude,
            });
            let truth: std::collections::HashSet<_> =
                survey.label(LabelLevel::AtLeastOne).into_iter().collect();
            let hits = results.iter().filter(|p| truth.contains(p)).count();
            if hits > 0 {
                any_overlap = true;
            }
            if hits < truth.len() {
                any_miss = true;
            }
        }
        assert!(any_overlap, "engine never finds any ground-truth paper");
        assert!(
            any_miss,
            "engine implausibly finds the complete reference list"
        );
    }

    #[test]
    fn name_identifies_the_engine() {
        let c = corpus();
        let engine = ScholarEngine::build(&c);
        assert!(engine.name().contains("Scholar"));
    }

    #[test]
    fn shared_index_reuse_matches_direct_build() {
        let c = corpus();
        let idx = EngineIndex::build(&c);
        let a = ScholarEngine::from_index(idx);
        let b = ScholarEngine::build(&c);
        let survey = c.survey_bank().iter().next().unwrap();
        assert_eq!(
            a.search(&Query::simple(&survey.query, 15)),
            b.search(&Query::simple(&survey.query, 15))
        );
    }
}
