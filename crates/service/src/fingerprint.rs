//! Cache keys for reading-path requests.
//!
//! Two requests that cannot produce different outputs must map to the same
//! fingerprint: the query text is whitespace-normalised and lowercased (the
//! tokenizer downstream is case-insensitive), the exclusion set is sorted and
//! deduplicated, and every configuration field — including the f64 cost
//! constants, captured by bit pattern — participates in equality and
//! hashing.

use rpg_corpus::PaperId;
use rpg_repager::system::PathRequest;
use rpg_repager::{RepagerConfig, Variant};

/// A hashable identity of a [`PathRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestFingerprint {
    query: String,
    top_k: usize,
    max_year: Option<u16>,
    exclude: Vec<PaperId>,
    variant: Variant,
    /// Every `RepagerConfig` field, widened to bit-exact `u64`s.
    config: [u64; 11],
}

fn config_bits(config: &RepagerConfig) -> [u64; 11] {
    [
        config.alpha.to_bits(),
        config.beta.to_bits(),
        config.gamma.to_bits(),
        config.a.to_bits(),
        config.b.to_bits(),
        config.seed_count as u64,
        u64::from(config.expansion_hops),
        config.cooccurrence_threshold as u64,
        config.max_terminals as u64,
        u64::from(config.use_node_weights),
        u64::from(config.use_edge_weights),
    ]
}

impl RequestFingerprint {
    /// Computes the fingerprint of a request.
    pub fn of(request: &PathRequest<'_>) -> Self {
        let mut normalized = String::with_capacity(request.query.len());
        for token in request.query.split_whitespace() {
            if !normalized.is_empty() {
                normalized.push(' ');
            }
            normalized.extend(token.chars().flat_map(char::to_lowercase));
        }
        let mut exclude: Vec<PaperId> = request.exclude.to_vec();
        exclude.sort_unstable();
        exclude.dedup();
        RequestFingerprint {
            query: normalized,
            top_k: request.top_k,
            max_year: request.max_year,
            exclude,
            variant: request.variant,
            config: config_bits(&request.config),
        }
    }

    /// The normalised query text.
    pub fn query(&self) -> &str {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_request() -> PathRequest<'static> {
        PathRequest::new("Graph Neural Networks", 20)
    }

    #[test]
    fn query_normalisation_folds_case_and_whitespace() {
        let a = RequestFingerprint::of(&base_request());
        let b = RequestFingerprint::of(&PathRequest::new("  graph   neural\tnetworks ", 20));
        assert_eq!(a, b);
        assert_eq!(a.query(), "graph neural networks");
    }

    #[test]
    fn exclude_order_and_duplicates_do_not_matter() {
        let e1 = [PaperId(3), PaperId(1), PaperId(3)];
        let e2 = [PaperId(1), PaperId(3)];
        let a = RequestFingerprint::of(&PathRequest {
            exclude: &e1,
            ..base_request()
        });
        let b = RequestFingerprint::of(&PathRequest {
            exclude: &e2,
            ..base_request()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn every_distinguishing_field_changes_the_fingerprint() {
        let base = RequestFingerprint::of(&base_request());
        let variants = [
            RequestFingerprint::of(&PathRequest {
                top_k: 21,
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                max_year: Some(2010),
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                variant: Variant::Union,
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                exclude: &[PaperId(7)],
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                config: RepagerConfig {
                    alpha: 4.0,
                    ..Default::default()
                },
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                config: RepagerConfig {
                    use_edge_weights: false,
                    ..Default::default()
                },
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest::new("other query", 20)),
        ];
        for other in &variants {
            assert_ne!(&base, other);
        }
    }
}
