//! Cache keys for reading-path requests.
//!
//! Two requests that cannot produce different outputs must map to the same
//! fingerprint: the query text is whitespace-normalised and lowercased (the
//! tokenizer downstream is case-insensitive), the exclusion set is sorted and
//! deduplicated, and every configuration field — including the f64 cost
//! constants, captured by bit pattern — participates in equality and
//! hashing.
//!
//! Fingerprints also carry a **corpus epoch**: a counter the multi-tenant
//! [`crate::registry::CorpusRegistry`] bumps whenever a tenant's corpus is
//! refreshed. Identical requests against different corpus generations get
//! different fingerprints, so a stale cached result can never be served for
//! a refreshed corpus. Single-corpus callers ([`crate::PathService`]) leave
//! the epoch at its default of 0.

use rpg_corpus::PaperId;
use rpg_repager::system::PathRequest;
use rpg_repager::{RepagerConfig, Variant};

/// A hashable identity of a [`PathRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestFingerprint {
    query: String,
    top_k: usize,
    max_year: Option<u16>,
    exclude: Vec<PaperId>,
    variant: Variant,
    /// Every `RepagerConfig` field, widened to bit-exact `u64`s.
    config: [u64; 11],
    /// Corpus generation the request is bound to (0 outside a registry).
    epoch: u64,
}

fn config_bits(config: &RepagerConfig) -> [u64; 11] {
    [
        config.alpha.to_bits(),
        config.beta.to_bits(),
        config.gamma.to_bits(),
        config.a.to_bits(),
        config.b.to_bits(),
        config.seed_count as u64,
        u64::from(config.expansion_hops),
        config.cooccurrence_threshold as u64,
        config.max_terminals as u64,
        u64::from(config.use_node_weights),
        u64::from(config.use_edge_weights),
    ]
}

impl RequestFingerprint {
    /// Computes the fingerprint of a request.
    pub fn of(request: &PathRequest<'_>) -> Self {
        let mut normalized = String::with_capacity(request.query.len());
        for token in request.query.split_whitespace() {
            if !normalized.is_empty() {
                normalized.push(' ');
            }
            normalized.extend(token.chars().flat_map(char::to_lowercase));
        }
        let mut exclude: Vec<PaperId> = request.exclude.to_vec();
        exclude.sort_unstable();
        exclude.dedup();
        RequestFingerprint {
            query: normalized,
            top_k: request.top_k,
            max_year: request.max_year,
            exclude,
            variant: request.variant,
            config: config_bits(&request.config),
            epoch: 0,
        }
    }

    /// Binds the fingerprint to a corpus generation: the same request under
    /// a different epoch is a different cache key.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The corpus generation this fingerprint is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The normalised query text.
    pub fn query(&self) -> &str {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_request() -> PathRequest<'static> {
        PathRequest::new("Graph Neural Networks", 20)
    }

    #[test]
    fn query_normalisation_folds_case_and_whitespace() {
        let a = RequestFingerprint::of(&base_request());
        let b = RequestFingerprint::of(&PathRequest::new("  graph   neural\tnetworks ", 20));
        assert_eq!(a, b);
        assert_eq!(a.query(), "graph neural networks");
    }

    #[test]
    fn query_normalisation_handles_mixed_case_and_newlines() {
        let a = RequestFingerprint::of(&PathRequest::new("GRAPH\nNeural\r\n NETWORKS", 20));
        let b = RequestFingerprint::of(&base_request());
        assert_eq!(a, b);
        // Multi-char lowercase expansions must not merge adjacent tokens.
        let c = RequestFingerprint::of(&PathRequest::new("İstanbul GRAPHS", 20));
        assert_eq!(c.query().split(' ').count(), 2);
    }

    #[test]
    fn max_year_none_and_some_are_distinct() {
        let none = RequestFingerprint::of(&base_request());
        let some = RequestFingerprint::of(&PathRequest {
            max_year: Some(2020),
            ..base_request()
        });
        let other = RequestFingerprint::of(&PathRequest {
            max_year: Some(2021),
            ..base_request()
        });
        assert_ne!(none, some);
        assert_ne!(some, other);
        assert_eq!(
            some,
            RequestFingerprint::of(&PathRequest {
                max_year: Some(2020),
                ..base_request()
            })
        );
    }

    #[test]
    fn epoch_bump_invalidates_the_fingerprint() {
        let base = RequestFingerprint::of(&base_request());
        assert_eq!(base.epoch(), 0);
        let gen1 = RequestFingerprint::of(&base_request()).with_epoch(1);
        let gen2 = RequestFingerprint::of(&base_request()).with_epoch(2);
        assert_ne!(base, gen1);
        assert_ne!(gen1, gen2);
        assert_eq!(gen1, RequestFingerprint::of(&base_request()).with_epoch(1));
        assert_eq!(gen2.epoch(), 2);
        // Epoch participates in hashing too, not just equality.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |f: &RequestFingerprint| {
            let mut h = DefaultHasher::new();
            f.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash(&gen1), hash(&gen2));
    }

    #[test]
    fn exclude_order_and_duplicates_do_not_matter() {
        let e1 = [PaperId(3), PaperId(1), PaperId(3)];
        let e2 = [PaperId(1), PaperId(3)];
        let a = RequestFingerprint::of(&PathRequest {
            exclude: &e1,
            ..base_request()
        });
        let b = RequestFingerprint::of(&PathRequest {
            exclude: &e2,
            ..base_request()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn every_distinguishing_field_changes_the_fingerprint() {
        let base = RequestFingerprint::of(&base_request());
        let variants = [
            RequestFingerprint::of(&PathRequest {
                top_k: 21,
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                max_year: Some(2010),
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                variant: Variant::Union,
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                exclude: &[PaperId(7)],
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                config: RepagerConfig {
                    alpha: 4.0,
                    ..Default::default()
                },
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest {
                config: RepagerConfig {
                    use_edge_weights: false,
                    ..Default::default()
                },
                ..base_request()
            }),
            RequestFingerprint::of(&PathRequest::new("other query", 20)),
        ];
        for other in &variants {
            assert_ne!(&base, other);
        }
    }
}
