//! Work-stealing scoped-thread fan-out shared by the serving layer and the
//! evaluation loop.
//!
//! One place owns the scheduling and result-ordering logic so the batch
//! path and the per-survey evaluation loop cannot drift.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Computes `work(state, i)` for every `i in 0..n` over `threads` scoped
/// worker threads, preserving index order in the returned vector.
///
/// Scheduling is work-stealing: all workers pull the next unclaimed index
/// from one shared atomic counter, so a skewed workload (one huge query next
/// to many tiny ones) no longer stalls on the worker that drew the expensive
/// chunk — the remaining items flow to whichever workers are free. Each
/// worker builds its own `state` once via `init` and reuses it for every
/// item it claims — this is how batch execution gives every worker one
/// Dijkstra scratch. With `threads <= 1` (or `n == 1`) everything runs on
/// the calling thread.
pub fn fan_out<T, S, I, W>(n: usize, threads: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| work(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut state = init();
                    let mut claimed: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claimed.push((i, work(&mut state, i)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("fan-out worker panicked"));
        }
    });
    // Workers return disjoint claimed-index sets covering 0..n; sorting by
    // index restores the input order.
    results.sort_unstable_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 7, 64] {
            let out = fan_out(10, threads, || (), |_, i| i * i);
            assert_eq!(
                out,
                (0..10).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_reused_across_stolen_items() {
        // Each worker's state counts the items it processed. The scheduler is
        // dynamic, so per-item assignment is nondeterministic — but every
        // item must see a counter equal to the number of items its worker
        // already handled, i.e. each worker's counters read 0, 1, 2, ... in
        // claim order, and the counters across workers partition 0..n.
        let n = 24;
        for threads in [1, 2, 4] {
            let seen = fan_out(
                n,
                threads,
                || 0usize,
                |count, _| {
                    let seen = *count;
                    *count += 1;
                    seen
                },
            );
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            // k workers with c_1 + ... + c_k = n items produce exactly the
            // multiset {0..c_1} ∪ ... ∪ {0..c_k}: every value v appears once
            // per worker that processed more than v items.
            let mut counts = std::collections::HashMap::new();
            for v in &sorted {
                *counts.entry(*v).or_insert(0usize) += 1;
            }
            let workers_at_zero = counts.get(&0).copied().unwrap_or(0);
            assert!(
                (1..=threads.max(1)).contains(&workers_at_zero),
                "threads={threads}: {workers_at_zero} workers processed items"
            );
            for window in sorted.windows(2) {
                assert!(
                    window[1] <= window[0] + 1,
                    "threads={threads}: counter multiset has a gap: {sorted:?}"
                );
            }
            assert_eq!(seen.len(), n);
        }
    }

    #[test]
    fn skewed_workload_is_stolen_by_free_workers() {
        // Item 0 stalls its worker; with static chunking the first chunk
        // (half the items) would wait behind it. With work stealing, the
        // other worker drains everything else meanwhile, so the slow worker
        // claims at most one more item after the stall.
        let n = 16;
        let processed = fan_out(n, 2, Vec::new, |mine: &mut Vec<usize>, i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(60));
            }
            mine.push(i);
            mine.len()
        });
        assert_eq!(processed.len(), n);
        // The worker that took item 0 slept through the other worker's
        // drain; by the time it woke, (almost) everything else was claimed.
        // processed[0] is that worker's 1-based claim count at item 0 == 1.
        assert_eq!(processed[0], 1, "item 0 must be its worker's first claim");
        let max_by_stalled_worker = processed.iter().copied().max().unwrap();
        assert!(
            max_by_stalled_worker >= n / 2,
            "the free worker should have claimed most items: {processed:?}"
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = fan_out(0, 4, || (), |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_the_calling_thread() {
        let calling = std::thread::current().id();
        let out = fan_out(1, 8, || (), |_, i| (i, std::thread::current().id()));
        assert_eq!(out, vec![(0, calling)]);
    }
}
