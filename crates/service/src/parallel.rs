//! Chunked scoped-thread fan-out shared by the serving layer and the
//! evaluation loop.
//!
//! One place owns the chunk-sizing and slot-offset arithmetic so the batch
//! path and the per-survey evaluation loop cannot drift.

/// Computes `work(state, i)` for every `i in 0..n` over `threads` scoped
/// worker threads, preserving index order in the returned vector.
///
/// The index range is split into contiguous chunks (one per worker); each
/// worker builds its own `state` once via `init` and reuses it for its whole
/// chunk — this is how batch execution gives every worker one Dijkstra
/// scratch. With `threads <= 1` (or `n == 1`) everything runs on the calling
/// thread.
pub fn fan_out<T, S, I, W>(n: usize, threads: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| work(&mut state, i)).collect();
    }

    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    let chunks: Vec<(usize, &mut [Option<T>])> = slots.chunks_mut(chunk).enumerate().collect();
    std::thread::scope(|scope| {
        for (chunk_index, slot) in chunks {
            let init = &init;
            let work = &work;
            scope.spawn(move || {
                let mut state = init();
                let start = chunk_index * chunk;
                for (offset, out) in slot.iter_mut().enumerate() {
                    *out = Some(work(&mut state, start + offset));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every fan-out slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 7, 64] {
            let out = fan_out(10, threads, || (), |_, i| i * i);
            assert_eq!(
                out,
                (0..10).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_reused_within_a_chunk() {
        // Each worker counts how many items it processed; with 2 threads over
        // 10 items the chunks are 5+5, so every item sees a counter equal to
        // its offset within the chunk.
        let offsets = fan_out(
            10,
            2,
            || 0usize,
            |count, _| {
                let seen = *count;
                *count += 1;
                seen
            },
        );
        assert_eq!(offsets, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = fan_out(0, 4, || (), |_, i| i);
        assert!(out.is_empty());
    }
}
