//! Declarative tenant manifests: the control-plane description of *which*
//! corpora a multi-tenant server serves and *how* each tenant is treated.
//!
//! A [`Manifest`] is parsed from a JSON file and maps tenant names to a
//! [`TenantConfig`]: the corpus recipe ([`CorpusSpec`] — seed, scale and
//! optional size override, enough to rebuild the corpus deterministically),
//! a default model variant, the tenant's fair-queue bound and DRR weight,
//! an optional cache share, and the API keys that authenticate as this
//! tenant. The server-side pieces (queue weights, auth keys) are consumed
//! by `rpg-server`; the corpus lifecycle lives here:
//! [`CorpusRegistry::apply_manifest`] diffs the manifest against the
//! registry's current tenants and creates, replaces or removes exactly the
//! tenants whose corpus spec changed — replacement bumps the tenant's epoch
//! and evicts exactly that tenant's cache entries, and tenants whose spec
//! is unchanged are left serving their existing artifacts.
//!
//! ```json
//! {
//!   "admin_keys": ["admin-secret"],
//!   "tenants": {
//!     "alpha": {
//!       "corpus": {"seed": 10, "scale": "small"},
//!       "weight": 2,
//!       "queue": 16,
//!       "api_keys": ["alpha-key"]
//!     },
//!     "beta": {
//!       "corpus": {"seed": 11, "scale": "small", "papers_per_topic": 40},
//!       "variant": "NEWST-C",
//!       "cache_share": 32,
//!       "api_keys": ["beta-key"]
//!     }
//!   }
//! }
//! ```
//!
//! [`CorpusRegistry::apply_manifest`]: crate::CorpusRegistry::apply_manifest

use rpg_corpus::{generate, Corpus, CorpusConfig};
use rpg_repager::Variant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The corpus scale a [`CorpusSpec`] starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusScale {
    /// `CorpusConfig::small()` — the ~1.2k-paper demo corpus.
    Small,
    /// `CorpusConfig::default()` — the ~5k-paper benchmark corpus.
    Full,
}

impl CorpusScale {
    /// Parses the manifest spelling (`"small"` / `"full"`, with
    /// `"default"` accepted as an alias for full).
    pub fn from_name(name: &str) -> Option<CorpusScale> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(CorpusScale::Small),
            "full" | "default" => Some(CorpusScale::Full),
            _ => None,
        }
    }

    /// The canonical manifest spelling.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusScale::Small => "small",
            CorpusScale::Full => "full",
        }
    }
}

/// A deterministic corpus recipe: everything needed to (re)build one
/// tenant's corpus. Two tenants with equal specs serve identical corpora,
/// which is what lets [`CorpusRegistry::apply_manifest`] skip rebuilding
/// tenants whose spec did not change.
///
/// [`CorpusRegistry::apply_manifest`]: crate::CorpusRegistry::apply_manifest
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// RNG seed; the corpus is a pure function of the spec.
    pub seed: u64,
    /// Corpus scale (`"small"` or `"full"`); small when omitted.
    pub scale: Option<String>,
    /// Overrides the base number of papers per topic.
    pub papers_per_topic: Option<usize>,
    /// Path of a snapshot file to load instead of building from the spec.
    /// The snapshot is used only when its embedded fingerprint matches this
    /// spec's generator fields (see [`crate::snapshot::spec_fingerprint`]);
    /// on any mismatch or read/decode error the corpus is rebuilt from the
    /// spec with a warning — a snapshot can speed a boot up but never
    /// change what is served.
    pub snapshot: Option<String>,
}

impl CorpusSpec {
    /// A small-scale spec with just a seed.
    pub fn small(seed: u64) -> CorpusSpec {
        CorpusSpec {
            seed,
            scale: None,
            papers_per_topic: None,
            snapshot: None,
        }
    }

    /// The parsed scale; errors on an unknown spelling.
    pub fn corpus_scale(&self) -> Result<CorpusScale, ManifestError> {
        match &self.scale {
            None => Ok(CorpusScale::Small),
            Some(name) => CorpusScale::from_name(name).ok_or_else(|| {
                ManifestError::new(format!(
                    "unknown corpus scale {name:?}; expected \"small\" or \"full\""
                ))
            }),
        }
    }

    /// The full generator configuration this spec describes.
    pub fn corpus_config(&self) -> Result<CorpusConfig, ManifestError> {
        let base = match self.corpus_scale()? {
            CorpusScale::Small => CorpusConfig::small(),
            CorpusScale::Full => CorpusConfig::default(),
        };
        let mut config = CorpusConfig {
            seed: self.seed,
            ..base
        };
        if let Some(papers) = self.papers_per_topic {
            if papers == 0 {
                return Err(ManifestError::new("papers_per_topic must be at least 1"));
            }
            config.papers_per_topic = papers;
        }
        Ok(config)
    }

    /// Generates the corpus this spec describes (CPU-heavy; callers run it
    /// off any latency-sensitive thread).
    pub fn build_corpus(&self) -> Result<Corpus, ManifestError> {
        Ok(generate(&self.corpus_config()?))
    }
}

/// Everything a manifest says about one tenant (the tenant's name is the
/// key it sits under in [`Manifest::tenants`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TenantConfig {
    /// The corpus this tenant serves. Required.
    pub corpus: Option<CorpusSpec>,
    /// Default model variant for requests that omit one (paper-table name,
    /// e.g. `"NEWST-C"`); the service default when omitted.
    pub variant: Option<String>,
    /// Deficit-round-robin weight (≥ 1); 1 when omitted.
    pub weight: Option<u64>,
    /// Per-tenant admission-queue bound (≥ 1); the server default when
    /// omitted.
    pub queue: Option<usize>,
    /// Maximum result-cache entries this tenant may occupy in the shared
    /// cache; unlimited (plain LRU pressure) when omitted.
    pub cache_share: Option<usize>,
    /// Bearer keys that authenticate as this tenant, in plaintext.
    /// Deprecated in favour of `key_hashes`: plaintext keys still work but
    /// the server hashes them at load and logs a warning.
    pub api_keys: Option<Vec<String>>,
    /// Salted digests of bearer keys (`"<salt-hex>:<sha256-hex>"`, as
    /// printed by `rpg hash-key`) — the manifest never stores the secret
    /// itself.
    pub key_hashes: Option<Vec<String>>,
    /// Maximum requests of this tenant computing concurrently (≥ 1); when
    /// omitted the server derives the tenant's weighted share of its
    /// worker pool.
    pub inflight: Option<usize>,
    /// Deadline budget in milliseconds (≥ 1): work of this tenant still
    /// queued past it is shed instead of computed.
    pub deadline_ms: Option<u64>,
    /// Slow-request threshold in milliseconds for the trace exemplar ring:
    /// only requests at least this slow are retained for
    /// `GET /v1/debug/requests`. `0` retains every traced request; when
    /// omitted the server default applies.
    pub trace_slow_ms: Option<u64>,
    /// Marks this tenant as the one requests without a `corpus` field
    /// route to. At most one tenant may set it.
    pub default: Option<bool>,
}

impl TenantConfig {
    /// A minimal config serving `spec` with no keys and default tuning.
    pub fn for_spec(spec: CorpusSpec) -> TenantConfig {
        TenantConfig {
            corpus: Some(spec),
            ..TenantConfig::default()
        }
    }

    /// The corpus spec; errors when the manifest omitted it.
    pub fn corpus_spec(&self) -> Result<&CorpusSpec, ManifestError> {
        self.corpus
            .as_ref()
            .ok_or_else(|| ManifestError::new("tenant is missing its \"corpus\" spec"))
    }

    /// The parsed default variant, if configured.
    pub fn default_variant(&self) -> Result<Option<Variant>, ManifestError> {
        match self.variant.as_deref() {
            None => Ok(None),
            Some(name) => Variant::from_name(name).map(Some).ok_or_else(|| {
                let known: Vec<&str> = Variant::ALL.iter().map(|v| v.name()).collect();
                ManifestError::new(format!(
                    "unknown variant {name:?}; expected one of {}",
                    known.join(", ")
                ))
            }),
        }
    }

    /// The plaintext bearer keys, empty when omitted.
    pub fn keys(&self) -> &[String] {
        self.api_keys.as_deref().unwrap_or(&[])
    }

    /// The pre-hashed bearer keys, empty when omitted.
    pub fn hashed_keys(&self) -> &[String] {
        self.key_hashes.as_deref().unwrap_or(&[])
    }

    /// Whether this tenant is flagged as the default-corpus target.
    pub fn is_default(&self) -> bool {
        self.default == Some(true)
    }
}

/// A parsed, validated tenant manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Manifest {
    /// Bearer keys accepted for the admin endpoints (plaintext, deprecated
    /// in favour of [`Manifest::admin_key_hashes`]).
    pub admin_keys: Option<Vec<String>>,
    /// Salted-SHA-256 admin keys in `"<salt-hex>:<digest-hex>"` form, as
    /// minted by `rpg hash-key`; the manifest never holds the secret.
    pub admin_key_hashes: Option<Vec<String>>,
    /// Structured-log level (`error`/`warn`/`info`/`debug`/`trace`);
    /// applied at load and on every SIGHUP re-apply, so operators can swap
    /// verbosity without a restart. The process default (or the
    /// `--log-level` flag) applies when omitted.
    pub log_level: Option<String>,
    /// Tenant name → tenant configuration.
    pub tenants: Option<HashMap<String, TenantConfig>>,
}

impl Manifest {
    /// Parses and validates a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Manifest, ManifestError> {
        let manifest: Manifest = serde_json::from_str(text)
            .map_err(|e| ManifestError::new(format!("invalid manifest JSON: {e}")))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// The plaintext admin keys, empty when omitted.
    pub fn admin(&self) -> &[String] {
        self.admin_keys.as_deref().unwrap_or(&[])
    }

    /// The pre-hashed admin keys, empty when omitted.
    pub fn admin_hashed(&self) -> &[String] {
        self.admin_key_hashes.as_deref().unwrap_or(&[])
    }

    /// Tenant name → config, sorted by name so application order (and any
    /// error reported out of it) is deterministic.
    pub fn tenants_sorted(&self) -> Vec<(&str, &TenantConfig)> {
        let mut tenants: Vec<(&str, &TenantConfig)> = self
            .tenants
            .iter()
            .flatten()
            .map(|(name, config)| (name.as_str(), config))
            .collect();
        tenants.sort_by_key(|&(name, _)| name);
        tenants
    }

    /// The configuration of one tenant.
    pub fn tenant(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants.as_ref()?.get(name)
    }

    /// The tenant flagged `"default": true`, if any (validation guarantees
    /// at most one).
    pub fn default_tenant(&self) -> Option<&str> {
        self.tenants_sorted()
            .into_iter()
            .find(|(_, config)| config.is_default())
            .map(|(name, _)| name)
    }

    /// Checks every cross-field rule a JSON-shaped manifest can still get
    /// wrong: tenant names must be usable in URLs and queue lanes, weights
    /// and bounds must be positive, corpus specs must parse, and no bearer
    /// key may be ambiguous (shared between tenants, or between a tenant
    /// and the admin set).
    pub fn validate(&self) -> Result<(), ManifestError> {
        let mut seen_keys: HashMap<&str, String> = HashMap::new();
        let mut default_tenant: Option<String> = None;
        if let Some(level) = self.log_level.as_deref() {
            if rpg_obs::log::Level::parse(level).is_none() {
                return Err(ManifestError::new(format!(
                    "unknown log_level {level:?}; expected one of error, warn, \
                     info, debug, trace"
                )));
            }
        }
        for key in self.admin().iter().chain(self.admin_hashed()) {
            if key.is_empty() {
                return Err(ManifestError::new("admin keys must be non-empty"));
            }
            seen_keys.insert(key, "admin".to_string());
        }
        for (name, config) in self.tenants_sorted() {
            if !valid_tenant_name(name) {
                return Err(ManifestError::new(format!(
                    "invalid tenant name {name:?}: names are non-empty, contain no \
                     whitespace or '/', and may not start with \"__\""
                )));
            }
            let spec = config
                .corpus_spec()
                .map_err(|e| e.for_tenant(name))?
                .clone();
            spec.corpus_config().map_err(|e| e.for_tenant(name))?;
            config.default_variant().map_err(|e| e.for_tenant(name))?;
            if config.weight == Some(0) {
                return Err(ManifestError::new(format!(
                    "tenant {name:?}: weight must be at least 1"
                )));
            }
            if config.queue == Some(0) {
                return Err(ManifestError::new(format!(
                    "tenant {name:?}: queue bound must be at least 1"
                )));
            }
            if config.inflight == Some(0) {
                return Err(ManifestError::new(format!(
                    "tenant {name:?}: inflight cap must be at least 1"
                )));
            }
            if config.deadline_ms == Some(0) {
                return Err(ManifestError::new(format!(
                    "tenant {name:?}: deadline_ms must be at least 1"
                )));
            }
            // A zero share would make the eviction loop self-evict the
            // tenant's entry on every insert — reject it like the other
            // zero-valued tuning knobs instead of silently serving uncached.
            if config.cache_share == Some(0) {
                return Err(ManifestError::new(format!(
                    "tenant {name:?}: cache_share must be at least 1"
                )));
            }
            if config.is_default() {
                match &default_tenant {
                    None => default_tenant = Some(name.to_string()),
                    Some(first) => {
                        return Err(ManifestError::new(format!(
                            "tenants {first:?} and {name:?} both claim \"default\": true"
                        )));
                    }
                }
            }
            for key in config.keys().iter().chain(config.hashed_keys()) {
                if key.is_empty() {
                    return Err(ManifestError::new(format!(
                        "tenant {name:?}: api keys must be non-empty"
                    )));
                }
                if let Some(owner) = seen_keys.insert(key, name.to_string()) {
                    return Err(ManifestError::new(format!(
                        "api key {key:?} is claimed by both {owner:?} and {name:?}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Whether `name` may name a tenant: non-empty, no whitespace, `/` or
/// control characters (names appear in URL paths and queue lanes), and not
/// the reserved `__` prefix (internal admission lanes). The same rule
/// gates manifest tenants and wire-side `PUT /v1/corpora/:name`.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with("__")
        && !name
            .chars()
            .any(|c| c.is_ascii_whitespace() || c == '/' || c.is_ascii_control())
}

/// What [`CorpusRegistry::apply_manifest`] did to each tenant, sorted by
/// name within each bucket.
///
/// [`CorpusRegistry::apply_manifest`]: crate::CorpusRegistry::apply_manifest
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManifestDiff {
    /// Tenants that did not exist and were built and registered.
    pub created: Vec<String>,
    /// Tenants whose corpus spec changed: rebuilt, epoch-bumped, and their
    /// cache entries evicted.
    pub replaced: Vec<String>,
    /// Tenants present in the registry but absent from the manifest:
    /// removed, cache entries evicted.
    pub removed: Vec<String>,
    /// Tenants whose corpus spec matched; artifacts and cache untouched
    /// (tuning fields like `cache_share` are still re-applied).
    pub unchanged: Vec<String>,
}

impl ManifestDiff {
    /// Whether the apply changed any tenant's artifacts or membership.
    pub fn is_noop(&self) -> bool {
        self.created.is_empty() && self.replaced.is_empty() && self.removed.is_empty()
    }
}

/// A manifest that does not describe a servable tenant set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    message: String,
}

impl ManifestError {
    pub(crate) fn new(message: impl Into<String>) -> ManifestError {
        ManifestError {
            message: message.into(),
        }
    }

    fn for_tenant(self, name: &str) -> ManifestError {
        ManifestError::new(format!("tenant {name:?}: {}", self.message))
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ManifestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_json() -> String {
        r#"{
            "admin_keys": ["root-key"],
            "tenants": {
                "alpha": {
                    "corpus": {"seed": 10, "scale": "small"},
                    "weight": 2,
                    "queue": 16,
                    "api_keys": ["alpha-key"]
                },
                "beta": {
                    "corpus": {"seed": 11, "papers_per_topic": 30},
                    "variant": "NEWST-C",
                    "cache_share": 4,
                    "api_keys": ["beta-key-1", "beta-key-2"]
                }
            }
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_round_trips() {
        let manifest = Manifest::from_json(&demo_json()).unwrap();
        assert_eq!(manifest.admin(), ["root-key"]);
        let names: Vec<&str> = manifest
            .tenants_sorted()
            .iter()
            .map(|&(name, _)| name)
            .collect();
        assert_eq!(names, ["alpha", "beta"]);
        let alpha = manifest.tenant("alpha").unwrap();
        assert_eq!(alpha.corpus_spec().unwrap().seed, 10);
        assert_eq!(alpha.weight, Some(2));
        assert_eq!(alpha.queue, Some(16));
        let beta = manifest.tenant("beta").unwrap();
        assert_eq!(
            beta.default_variant().unwrap(),
            Some(Variant::CandidatesOnly)
        );
        assert_eq!(beta.cache_share, Some(4));
        assert_eq!(beta.keys().len(), 2);
        // Serialise → parse yields the same manifest.
        let text = serde_json::to_string(&manifest).unwrap();
        assert_eq!(Manifest::from_json(&text).unwrap(), manifest);
    }

    #[test]
    fn corpus_spec_builds_the_configured_scale() {
        let spec = CorpusSpec {
            seed: 7,
            scale: Some("full".to_string()),
            papers_per_topic: Some(33),
            snapshot: None,
        };
        let config = spec.corpus_config().unwrap();
        assert_eq!(config.seed, 7);
        assert_eq!(config.papers_per_topic, 33);
        assert_eq!(
            CorpusSpec::small(7)
                .corpus_config()
                .unwrap()
                .papers_per_topic,
            CorpusConfig::small().papers_per_topic
        );
        // "default" is an accepted alias for full.
        assert_eq!(CorpusScale::from_name("default"), Some(CorpusScale::Full));
        assert!(CorpusSpec {
            scale: Some("tiny".to_string()),
            ..CorpusSpec::small(1)
        }
        .corpus_config()
        .is_err());
    }

    #[test]
    fn identical_specs_build_identical_corpora() {
        let a = CorpusSpec::small(0xA11CE).build_corpus().unwrap();
        let b = CorpusSpec::small(0xA11CE).build_corpus().unwrap();
        assert_eq!(a.papers().len(), b.papers().len());
        assert_eq!(
            a.survey_bank().iter().next().unwrap().query,
            b.survey_bank().iter().next().unwrap().query
        );
    }

    #[test]
    fn validation_rejects_broken_manifests() {
        for (json, what) in [
            (r#"{"tenants": {"a": {}}}"#, "missing corpus spec"),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1, "scale": "huge"}}}}"#,
                "unknown scale",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "weight": 0}}}"#,
                "zero weight",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "queue": 0}}}"#,
                "zero queue bound",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "variant": "bogus"}}}"#,
                "unknown variant",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "inflight": 0}}}"#,
                "zero inflight cap",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "deadline_ms": 0}}}"#,
                "zero deadline",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "cache_share": 0}}}"#,
                "zero cache share",
            ),
            (
                r#"{"tenants": {
                    "a": {"corpus": {"seed": 1}, "default": true},
                    "b": {"corpus": {"seed": 2}, "default": true}}}"#,
                "two default tenants",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "key_hashes": [""]}}}"#,
                "empty key hash",
            ),
            (
                r#"{"tenants": {
                    "a": {"corpus": {"seed": 1}, "key_hashes": ["ab:cd"]},
                    "b": {"corpus": {"seed": 2}, "api_keys": ["ab:cd"]}}}"#,
                "hash colliding with a plaintext key",
            ),
            (
                r#"{"tenants": {"a": {"corpus": {"seed": 1}, "api_keys": [""]}}}"#,
                "empty api key",
            ),
            (
                r#"{"tenants": {"__x": {"corpus": {"seed": 1}}}}"#,
                "reserved name",
            ),
            (
                r#"{"tenants": {"a b": {"corpus": {"seed": 1}}}}"#,
                "whitespace in name",
            ),
            (
                r#"{"tenants": {"a/b": {"corpus": {"seed": 1}}}}"#,
                "slash in name",
            ),
            (
                r#"{"tenants": {
                    "a": {"corpus": {"seed": 1}, "api_keys": ["k"]},
                    "b": {"corpus": {"seed": 2}, "api_keys": ["k"]}}}"#,
                "duplicate key across tenants",
            ),
            (
                r#"{"admin_keys": ["k"],
                    "tenants": {"a": {"corpus": {"seed": 1}, "api_keys": ["k"]}}}"#,
                "key shared with admin",
            ),
            ("not json", "syntax error"),
        ] {
            assert!(Manifest::from_json(json).is_err(), "accepted: {what}");
        }
    }

    #[test]
    fn empty_manifest_is_valid() {
        let manifest = Manifest::from_json("{}").unwrap();
        assert!(manifest.tenants_sorted().is_empty());
        assert!(manifest.admin().is_empty());
        assert_eq!(manifest.default_tenant(), None);
    }

    #[test]
    fn overload_and_default_fields_parse_and_round_trip() {
        let manifest = Manifest::from_json(
            r#"{
                "tenants": {
                    "alpha": {
                        "corpus": {"seed": 1},
                        "inflight": 3,
                        "deadline_ms": 250,
                        "key_hashes": ["00ff:aa11"]
                    },
                    "beta": {"corpus": {"seed": 2}, "default": true}
                }
            }"#,
        )
        .unwrap();
        let alpha = manifest.tenant("alpha").unwrap();
        assert_eq!(alpha.inflight, Some(3));
        assert_eq!(alpha.deadline_ms, Some(250));
        assert_eq!(alpha.hashed_keys(), ["00ff:aa11"]);
        assert!(!alpha.is_default());
        assert_eq!(manifest.default_tenant(), Some("beta"));
        let text = serde_json::to_string(&manifest).unwrap();
        assert_eq!(Manifest::from_json(&text).unwrap(), manifest);
    }
}
