//! The concurrent serving layer for RePaGer (`rpg-service`).
//!
//! [`PathService`] is an owned, thread-shareable handle over the staged
//! query pipeline of `rpg-repager`:
//!
//! * **Arc-shared artifacts** — corpus, engine index, PageRank and node
//!   weights are built once into an
//!   [`rpg_repager::artifacts::CorpusArtifacts`] and shared by every thread;
//! * **batch execution** — [`PathService::generate_batch`] fans a slice of
//!   requests out over scoped worker threads, each worker reusing one
//!   [`DijkstraScratch`] across its whole chunk;
//! * **result caching** — a bounded LRU keyed by [`RequestFingerprint`]
//!   serves repeated identical requests without recomputation.
//!
//! ```no_run
//! use rpg_repager::system::PathRequest;
//! use rpg_service::PathService;
//!
//! let corpus = rpg_corpus::generate(&rpg_corpus::CorpusConfig::small());
//! let service = PathService::build(corpus).unwrap();
//! let output = service.generate(&PathRequest::new("graph neural networks", 20)).unwrap();
//! assert!(output.reading_list.len() <= 20);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod fingerprint;
pub mod manifest;
pub mod parallel;
pub mod registry;
pub mod snapshot;

pub use cache::LruCache;
pub use fingerprint::RequestFingerprint;
pub use manifest::{
    valid_tenant_name, CorpusSpec, Manifest, ManifestDiff, ManifestError, TenantConfig,
};
pub use registry::{CorpusRegistry, RegistryError, Served, TenantOverview};
pub use snapshot::{spec_fingerprint, SnapshotError, SnapshotInfo};

use rpg_corpus::Corpus;
use rpg_engines::ScholarEngine;
use rpg_graph::GraphError;
use rpg_repager::artifacts::CorpusArtifacts;
use rpg_repager::scratch::PipelineScratch;
use rpg_repager::stages::serve_request;
use rpg_repager::system::{PathRequest, RepagerError, RepagerOutput};
use rpg_repager::weights::NodeWeights;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of results the LRU cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Cache hit/miss counters and occupancy of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to run the pipeline.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries.
    pub capacity: usize,
}

/// An owned, `Send + Sync` reading-path service over one corpus.
///
/// Cloning the service is cheap: clones share the same artifacts **and** the
/// same result cache.
pub struct PathService {
    artifacts: Arc<CorpusArtifacts>,
    cache: Arc<Mutex<LruCache<RequestFingerprint, Arc<RepagerOutput>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl Clone for PathService {
    fn clone(&self) -> Self {
        PathService {
            artifacts: self.artifacts.clone(),
            cache: self.cache.clone(),
            hits: self.hits.clone(),
            misses: self.misses.clone(),
        }
    }
}

thread_local! {
    // One pipeline workspace per thread: sequential single-request callers
    // (e.g. the evaluation loop) reuse it across every request they make.
    static THREAD_SCRATCH: RefCell<PipelineScratch> = RefCell::new(PipelineScratch::new());
}

/// Runs `f` with this thread's shared pipeline workspace (the one
/// [`PathService::generate`] and the registry's request path reuse across
/// every request a thread serves).
pub(crate) fn with_thread_scratch<T>(f: impl FnOnce(&mut PipelineScratch) -> T) -> T {
    THREAD_SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

impl PathService {
    /// Builds the service and all shared artifacts from a corpus.
    pub fn build(corpus: impl Into<Arc<Corpus>>) -> Result<Self, GraphError> {
        Ok(Self::with_artifacts(CorpusArtifacts::build(corpus)?))
    }

    /// Wraps pre-built artifacts with the default cache capacity.
    pub fn with_artifacts(artifacts: Arc<CorpusArtifacts>) -> Self {
        Self::with_cache_capacity(artifacts, DEFAULT_CACHE_CAPACITY)
    }

    /// Wraps pre-built artifacts with an explicit cache capacity
    /// (0 disables result caching).
    pub fn with_cache_capacity(artifacts: Arc<CorpusArtifacts>, capacity: usize) -> Self {
        PathService {
            artifacts,
            cache: Arc::new(Mutex::new(LruCache::new(capacity))),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared artifacts.
    pub fn artifacts(&self) -> &Arc<CorpusArtifacts> {
        &self.artifacts
    }

    /// The corpus being served.
    pub fn corpus(&self) -> &Corpus {
        self.artifacts.corpus()
    }

    /// The seed search engine.
    pub fn scholar(&self) -> &ScholarEngine {
        self.artifacts.scholar()
    }

    /// The Eq. (3) node-weight table.
    pub fn node_weights(&self) -> &NodeWeights {
        self.artifacts.node_weights()
    }

    /// Serves one request, consulting the result cache first.
    ///
    /// A cache hit returns a clone of the original output, so its
    /// `timings` describe the run that populated the cache, not the hit.
    pub fn generate(&self, request: &PathRequest<'_>) -> Result<RepagerOutput, RepagerError> {
        THREAD_SCRATCH
            .with(|scratch| self.generate_cached_with_scratch(request, &mut scratch.borrow_mut()))
    }

    /// Serves one request, always running the pipeline (no cache read or
    /// write). Benchmarks use this to measure true per-query cost.
    pub fn generate_uncached(
        &self,
        request: &PathRequest<'_>,
    ) -> Result<RepagerOutput, RepagerError> {
        THREAD_SCRATCH.with(|scratch| self.run_request(request, &mut scratch.borrow_mut()))
    }

    fn generate_cached_with_scratch(
        &self,
        request: &PathRequest<'_>,
        scratch: &mut PipelineScratch,
    ) -> Result<RepagerOutput, RepagerError> {
        let fingerprint = RequestFingerprint::of(request);
        if let Some(hit) = self.cache.lock().unwrap().get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((*hit).clone());
        }
        let output = self.run_request(request, scratch)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .unwrap()
            .insert(fingerprint, Arc::new(output.clone()));
        Ok(output)
    }

    fn run_request(
        &self,
        request: &PathRequest<'_>,
        scratch: &mut PipelineScratch,
    ) -> Result<RepagerOutput, RepagerError> {
        serve_request(
            self.artifacts.corpus(),
            self.artifacts.scholar(),
            self.artifacts.node_weights(),
            request,
            scratch,
        )
    }

    /// Serves a batch of requests concurrently, preserving order.
    ///
    /// Uses one worker thread per available CPU (capped at the batch size).
    pub fn generate_batch(
        &self,
        requests: &[PathRequest<'_>],
    ) -> Vec<Result<RepagerOutput, RepagerError>> {
        self.generate_batch_with_threads(requests, default_threads())
    }

    /// Serves a batch over an explicit number of worker threads. Each worker
    /// owns one [`PipelineScratch`] for its whole chunk of requests, and all
    /// workers share the service's result cache.
    pub fn generate_batch_with_threads(
        &self,
        requests: &[PathRequest<'_>],
        threads: usize,
    ) -> Vec<Result<RepagerOutput, RepagerError>> {
        parallel::fan_out(
            requests.len(),
            threads,
            PipelineScratch::new,
            |scratch, i| self.generate_cached_with_scratch(&requests[i], scratch),
        )
    }

    /// Cache occupancy and hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: cache.len(),
            capacity: cache.capacity(),
        }
    }

    /// Drops all cached results (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
    }
}

/// Default worker-thread count for batch execution.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_corpus::{generate, CorpusConfig};
    use rpg_repager::{RepagerConfig, Variant};

    fn service() -> PathService {
        let corpus = generate(&CorpusConfig {
            seed: 0xDE40,
            ..CorpusConfig::small()
        });
        PathService::build(corpus).unwrap()
    }

    fn survey_requests(service: &PathService, count: usize) -> Vec<(String, u16)> {
        service
            .corpus()
            .survey_bank()
            .iter()
            .take(count)
            .map(|s| (s.query.clone(), s.year))
            .collect()
    }

    #[test]
    fn single_requests_match_the_borrowing_facade() {
        let corpus = generate(&CorpusConfig {
            seed: 0xDE40,
            ..CorpusConfig::small()
        });
        let facade = rpg_repager::RePaGer::build(&corpus).unwrap();
        let service = PathService::build(corpus.clone()).unwrap();
        for (query, year) in survey_requests(&service, 4) {
            let request = PathRequest {
                max_year: Some(year),
                ..PathRequest::new(&query, 25)
            };
            let via_service = service.generate(&request).unwrap();
            let via_facade = facade.generate(&request).unwrap();
            assert!(
                via_service.same_result(&via_facade),
                "mismatch for query {query:?}"
            );
        }
    }

    #[test]
    fn repeated_request_is_served_from_the_cache() {
        let service = service();
        let (query, year) = survey_requests(&service, 1).remove(0);
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        let first = service.generate(&request).unwrap();
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let second = service.generate(&request).unwrap();
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(first.reading_list, second.reading_list);
        assert!(first.same_result(&second));
    }

    #[test]
    fn differing_fingerprint_fields_miss_the_cache() {
        let service = service();
        let (query, year) = survey_requests(&service, 1).remove(0);
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        service.generate(&request).unwrap();
        // Same query, different K / variant / config: all must recompute.
        service
            .generate(&PathRequest {
                top_k: 21,
                ..request.clone()
            })
            .unwrap();
        service
            .generate(&PathRequest {
                variant: Variant::CandidatesOnly,
                ..request.clone()
            })
            .unwrap();
        service
            .generate(&PathRequest {
                config: RepagerConfig::default().with_seed_count(10),
                ..request.clone()
            })
            .unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn uncached_requests_do_not_touch_the_cache() {
        let service = service();
        let (query, year) = survey_requests(&service, 1).remove(0);
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        service.generate_uncached(&request).unwrap();
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn batch_results_match_serial_results_in_order() {
        let service = service();
        let surveys = survey_requests(&service, 6);
        let requests: Vec<PathRequest<'_>> = surveys
            .iter()
            .map(|(query, year)| PathRequest {
                max_year: Some(*year),
                ..PathRequest::new(query, 20)
            })
            .collect();
        let serial: Vec<RepagerOutput> = requests
            .iter()
            .map(|r| service.generate_uncached(r).unwrap())
            .collect();
        service.clear_cache();
        let batched = service.generate_batch_with_threads(&requests, 4);
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.iter().zip(&serial) {
            assert!(b.as_ref().unwrap().same_result(s));
        }
    }

    #[test]
    fn concurrent_shared_service_yields_identical_outputs() {
        let service = service();
        let surveys = survey_requests(&service, 4);
        // Serial reference outputs, computed without caching so the threaded
        // runs below genuinely exercise the pipeline on cache misses.
        let reference: Vec<RepagerOutput> = surveys
            .iter()
            .map(|(query, year)| {
                service
                    .generate_uncached(&PathRequest {
                        max_year: Some(*year),
                        ..PathRequest::new(query, 20)
                    })
                    .unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for ((query, year), expected) in surveys.iter().zip(&reference) {
                        let output = service
                            .generate(&PathRequest {
                                max_year: Some(*year),
                                ..PathRequest::new(query, 20)
                            })
                            .unwrap();
                        assert!(output.same_result(expected));
                    }
                });
            }
        });
    }

    #[test]
    fn invalid_requests_error_and_are_not_cached() {
        let service = service();
        let bad = PathRequest {
            config: RepagerConfig {
                seed_count: 0,
                ..Default::default()
            },
            ..PathRequest::new("anything", 10)
        };
        // The typed configuration error survives through the service layer.
        assert!(matches!(
            service.generate(&bad),
            Err(RepagerError::Config(_))
        ));
        assert_eq!(service.cache_stats().entries, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let service = service();
        assert!(service.generate_batch(&[]).is_empty());
    }

    #[test]
    fn timings_are_populated_and_consistent() {
        let service = service();
        let (query, year) = survey_requests(&service, 1).remove(0);
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        let output = service.generate(&request).unwrap();
        let timings = output.timings;
        assert!(timings.total > std::time::Duration::ZERO);
        assert!(timings.stage_sum() <= timings.total);
        // The five stages cover the total minus bounded pipeline
        // bookkeeping. A strict ratio is flaky on loaded CI runners (a
        // scheduler stall between stages counts toward the total but no
        // stage), so allow a generous absolute gap.
        let gap = timings.total - timings.stage_sum();
        assert!(
            gap < std::time::Duration::from_millis(250),
            "non-stage overhead {gap:?} is too large for {:?} total",
            timings.total
        );
        for (name, duration) in timings.stages() {
            assert!(
                duration > std::time::Duration::ZERO,
                "stage {name} unrecorded"
            );
        }
    }
}
