//! A small bounded LRU map for request results.
//!
//! Capacity is expected to stay in the hundreds, so eviction scans for the
//! least-recently-used entry in O(n) instead of maintaining an intrusive
//! list; the scan is far cheaper than a single query evaluation.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (a capacity of 0 disables
    /// caching: every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        })
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evictee) = self
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&evictee);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over the cached keys in arbitrary order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Evicts the least-recently-used entry among those whose key passes
    /// the predicate, returning the evicted key (`None` when nothing
    /// matches). The multi-tenant registry uses this to enforce per-tenant
    /// cache shares: a tenant over its share evicts its own LRU entry, not
    /// another tenant's.
    pub fn evict_lru_where(&mut self, mut pred: impl FnMut(&K) -> bool) -> Option<K> {
        let key = self
            .map
            .iter()
            .filter(|(key, _)| pred(key))
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| key.clone())?;
        self.map.remove(&key);
        Some(key)
    }

    /// Keeps only the entries whose key/value pass the predicate.
    ///
    /// The multi-tenant registry uses this to invalidate one tenant's
    /// entries on corpus refresh without disturbing the others; recency
    /// ranks of the survivors are unchanged.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        self.map.retain(|key, entry| keep(key, &entry.value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cache: LruCache<u32, String> = LruCache::new(4);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so that 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(10));
        assert!(
            cache.get(&2).is_none(),
            "LRU entry should have been evicted"
        );
        assert_eq!(cache.get(&3), Some(30));
    }

    #[test]
    fn reinserting_updates_in_place() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert!(cache.get(&1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        cache.insert(1, 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn eviction_order_under_interleaved_gets_and_inserts() {
        let mut cache: LruCache<u32, u32> = LruCache::new(3);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(3, 30);
        // Recency now (oldest first): 1, 2, 3. Touch 1 and 2; 3 becomes LRU.
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), Some(20));
        cache.insert(4, 40); // evicts 3
        assert!(cache.get(&3).is_none());
        // Recency: 1, 2, 4. Re-inserting 1 refreshes it; 2 becomes LRU.
        cache.insert(1, 11);
        cache.insert(5, 50); // evicts 2
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&4), Some(40));
        assert_eq!(cache.get(&5), Some(50));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn misses_do_not_refresh_recency() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // A miss on key 1's *value space* must not count as a touch of 1.
        assert!(cache.get(&99).is_none());
        assert_eq!(cache.get(&2), Some(20));
        cache.insert(3, 30); // evicts 1 (oldest real touch)
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn capacity_one_keeps_only_the_latest_entry() {
        let mut cache: LruCache<u32, u32> = LruCache::new(1);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(2, 20);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.get(&2), Some(20));
        // Updating the resident key in place must not evict it.
        cache.insert(2, 21);
        assert_eq!(cache.get(&2), Some(21));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_never_stores_even_after_many_inserts() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        for i in 0..100 {
            cache.insert(i, i);
            assert!(cache.is_empty());
        }
        assert_eq!(cache.capacity(), 0);
        assert!(cache.get(&50).is_none());
    }

    #[test]
    fn retain_drops_only_matching_entries() {
        let mut cache: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..8 {
            cache.insert(i, i * 10);
        }
        cache.retain(|k, _| k % 2 == 0);
        assert_eq!(cache.len(), 4);
        for i in 0..8 {
            assert_eq!(cache.get(&i).is_some(), i % 2 == 0, "key {i}");
        }
        // Survivors keep working as normal LRU entries afterwards.
        cache.insert(9, 90);
        assert_eq!(cache.get(&9), Some(90));
    }
}
