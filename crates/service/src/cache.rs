//! A small bounded LRU map for request results.
//!
//! Capacity is expected to stay in the hundreds, so eviction scans for the
//! least-recently-used entry in O(n) instead of maintaining an intrusive
//! list; the scan is far cheaper than a single query evaluation.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (a capacity of 0 disables
    /// caching: every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        })
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evictee) = self
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&evictee);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cache: LruCache<u32, String> = LruCache::new(4);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so that 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(10));
        assert!(
            cache.get(&2).is_none(),
            "LRU entry should have been evicted"
        );
        assert_eq!(cache.get(&3), Some(30));
    }

    #[test]
    fn reinserting_updates_in_place() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert!(cache.get(&1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        cache.insert(1, 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 4);
    }
}
