//! Multi-tenant corpus sharding: many named [`CorpusArtifacts`] behind one
//! `Send + Sync` handle.
//!
//! A [`CorpusRegistry`] routes requests to a tenant by corpus name, shares
//! one bounded result cache across all tenants (keys carry the tenant name,
//! so identical queries against different corpora never collide), and
//! supports **refresh**: swapping in a rebuilt corpus for one tenant bumps
//! that tenant's *epoch* — which participates in every cache key via
//! [`RequestFingerprint::with_epoch`] — and actively evicts exactly that
//! tenant's cached results, leaving every other tenant's entries intact.

use crate::cache::LruCache;
use crate::fingerprint::RequestFingerprint;
use crate::manifest::{CorpusSpec, Manifest, ManifestDiff, ManifestError, TenantConfig};
use crate::{CacheStats, DEFAULT_CACHE_CAPACITY};
use rpg_corpus::Corpus;
use rpg_graph::GraphError;
use rpg_repager::artifacts::CorpusArtifacts;
use rpg_repager::stages::serve_request;
use rpg_repager::system::{PathRequest, RepagerError, RepagerOutput};
use rpg_repager::Variant;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An error serving a request through the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The named corpus is not registered.
    UnknownCorpus(String),
    /// The tenant was found but the request itself failed.
    Request(RepagerError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownCorpus(name) => write!(f, "unknown corpus {name:?}"),
            RegistryError::Request(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::UnknownCorpus(_) => None,
            RegistryError::Request(e) => Some(e),
        }
    }
}

impl From<RepagerError> for RegistryError {
    fn from(e: RepagerError) -> Self {
        RegistryError::Request(e)
    }
}

/// A served result plus whether it came from the cache.
#[derive(Debug, Clone)]
pub struct Served {
    /// The (shared) output of the pipeline run that answered the request.
    pub output: Arc<RepagerOutput>,
    /// Whether the result was answered from the cache. A cached output's
    /// `timings` describe the run that populated the cache, not this hit.
    pub cached: bool,
}

struct Tenant {
    artifacts: Arc<CorpusArtifacts>,
    epoch: u64,
    /// The declarative recipe the corpus was built from, when the tenant
    /// came from a manifest or a wire-side corpus spec — what
    /// [`CorpusRegistry::apply_manifest`] diffs against. `None` for tenants
    /// registered from a raw corpus.
    spec: Option<CorpusSpec>,
    /// Maximum shared-cache entries this tenant may occupy (`None` =
    /// limited only by global LRU pressure).
    cache_share: Option<usize>,
    /// Model variant served when a request omits one.
    default_variant: Option<Variant>,
}

/// One row of [`CorpusRegistry::overview`]: the control-plane view of a
/// tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOverview {
    /// The tenant name.
    pub name: String,
    /// Current corpus epoch (bumps on every refresh/replace).
    pub epoch: u64,
    /// The corpus spec, when the tenant was built from one.
    pub spec: Option<CorpusSpec>,
    /// Cached results currently held for this tenant.
    pub cached_entries: usize,
    /// The tenant's cache share, when bounded.
    pub cache_share: Option<usize>,
}

/// The cache key: tenant name plus the epoch-bound request fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TenantKey {
    corpus: String,
    fingerprint: RequestFingerprint,
}

/// Builds a tenant's artifacts from its spec, preferring the spec's
/// configured snapshot when one loads and its embedded fingerprint matches
/// the spec. An unusable snapshot — missing file, corruption, or a
/// fingerprint from a different spec — degrades to the full build with one
/// warning; it can never serve stale or wrong data because
/// [`crate::snapshot::decode`] refuses any fingerprint mismatch.
fn artifacts_for_spec(
    name: &str,
    spec: &CorpusSpec,
) -> Result<Arc<CorpusArtifacts>, ManifestError> {
    if let Some(path) = &spec.snapshot {
        match crate::snapshot::try_load(path, crate::snapshot::spec_fingerprint(spec)) {
            Ok(artifacts) => return Ok(artifacts),
            Err(e) => rpg_obs::log::warn(
                "registry",
                "snapshot unusable; rebuilding from spec",
                &[
                    ("tenant", name),
                    ("snapshot", path),
                    ("cause", &e.to_string()),
                ],
            ),
        }
    }
    let corpus = spec.build_corpus()?;
    CorpusArtifacts::build(corpus)
        .map_err(|e| ManifestError::new(format!("artifact build failed: {e}")))
}

/// A thread-shareable registry of named corpora with one shared result
/// cache.
pub struct CorpusRegistry {
    tenants: RwLock<HashMap<String, Tenant>>,
    cache: Mutex<LruCache<TenantKey, Arc<RepagerOutput>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CorpusRegistry {
    /// An empty registry with the default cache capacity.
    pub fn new() -> Self {
        Self::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty registry with an explicit shared-cache capacity
    /// (0 disables result caching for every tenant).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        CorpusRegistry {
            tenants: RwLock::new(HashMap::new()),
            cache: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Registers (or replaces) a corpus under a name, building its
    /// artifacts. Replacing an existing tenant behaves like
    /// [`CorpusRegistry::refresh`]: the epoch advances and the tenant's
    /// cached results are evicted.
    pub fn register(
        &self,
        name: impl Into<String>,
        corpus: impl Into<Arc<Corpus>>,
    ) -> Result<(), GraphError> {
        let artifacts = CorpusArtifacts::build(corpus)?;
        self.install(name.into(), artifacts, None);
        Ok(())
    }

    /// Registers (or replaces) a tenant from pre-built artifacts.
    pub fn register_artifacts(&self, name: impl Into<String>, artifacts: Arc<CorpusArtifacts>) {
        self.install(name.into(), artifacts, None);
    }

    /// Registers (or replaces) a tenant from a declarative
    /// [`TenantConfig`]: the corpus is generated from the config's spec,
    /// artifacts are built, and the spec plus tuning fields (cache share,
    /// default variant) are recorded on the tenant — the building block of
    /// both [`CorpusRegistry::apply_manifest`] and the wire-side
    /// `PUT /v1/corpora/:name`. Replacement semantics match
    /// [`CorpusRegistry::refresh`]: epoch bump and exact-tenant cache
    /// eviction.
    ///
    /// The corpus generation and artifact build are CPU-heavy and run
    /// without holding any registry lock, so concurrent serving continues
    /// until the final atomic swap.
    pub fn register_spec(
        &self,
        name: impl Into<String>,
        config: &TenantConfig,
    ) -> Result<u64, ManifestError> {
        let name = name.into();
        let spec = config.corpus_spec()?.clone();
        let default_variant = config.default_variant()?;
        let artifacts = artifacts_for_spec(&name, &spec)?;
        self.install(name.clone(), artifacts, Some(spec));
        {
            let mut tenants = self.tenants.write().unwrap();
            if let Some(tenant) = tenants.get_mut(&name) {
                tenant.cache_share = config.cache_share;
                tenant.default_variant = default_variant;
            }
        }
        Ok(self.epoch(&name).unwrap_or(0))
    }

    /// Applies a validated [`Manifest`] with a diff against the current
    /// tenant set: tenants new to the manifest are built and registered,
    /// tenants whose [`CorpusSpec`] changed are rebuilt and atomically
    /// swapped (epoch bump, exact-tenant cache eviction), tenants absent
    /// from the manifest are removed, and tenants with an unchanged spec
    /// keep their artifacts and cache while their tuning fields are
    /// re-applied. The manifest is authoritative: tenants registered
    /// outside it (including via `PUT`) are removed by the next apply.
    ///
    /// All corpus/artifact builds happen before anything is swapped, with
    /// no registry lock held — a failing build leaves the registry exactly
    /// as it was, and the event loops of a server sharing this registry
    /// never block on the builds.
    pub fn apply_manifest(&self, manifest: &Manifest) -> Result<ManifestDiff, ManifestError> {
        manifest.validate()?;
        // Phase 1: classify every manifest tenant against the current spec
        // snapshot.
        let current: HashMap<String, Option<CorpusSpec>> = {
            let tenants = self.tenants.read().unwrap();
            tenants
                .iter()
                .map(|(name, tenant)| (name.clone(), tenant.spec.clone()))
                .collect()
        };
        let mut diff = ManifestDiff::default();
        for (name, config) in manifest.tenants_sorted() {
            let spec = config.corpus_spec()?;
            match current.get(name) {
                Some(Some(existing)) if existing == spec => diff.unchanged.push(name.to_string()),
                Some(_) => diff.replaced.push(name.to_string()),
                None => diff.created.push(name.to_string()),
            }
        }
        diff.removed = current
            .keys()
            .filter(|name| manifest.tenant(name).is_none())
            .cloned()
            .collect();
        diff.removed.sort();
        // Phase 2: build everything that changed, before touching the
        // registry — an error here leaves the tenant set untouched. The
        // per-tenant builds are independent (corpus generation plus index
        // construction, the expensive part of a reload), so they fan out
        // over a worker pool; results come back in index order, keeping the
        // first-error report deterministic.
        let to_build: Vec<&String> = diff.created.iter().chain(&diff.replaced).collect();
        let built: Vec<(String, Arc<CorpusArtifacts>)> = crate::parallel::fan_out(
            to_build.len(),
            crate::default_threads().min(to_build.len().max(1)),
            || (),
            |(), i| {
                let name = to_build[i];
                let config = manifest.tenant(name).expect("classified tenant is listed");
                let artifacts = artifacts_for_spec(name, config.corpus_spec()?)
                    .map_err(|e| ManifestError::new(format!("tenant {name:?}: {e}")))?;
                Ok((name.clone(), artifacts))
            },
        )
        .into_iter()
        .collect::<Result<_, ManifestError>>()?;
        // Phase 3: commit under one write lock — epochs bump before the
        // cache sweep below, so the epoch-guarded insert in `generate`
        // cannot resurrect a pre-swap result.
        let mut vanished_unchanged: Vec<String> = Vec::new();
        {
            let mut tenants = self.tenants.write().unwrap();
            for (name, artifacts) in built {
                let config = manifest.tenant(&name).expect("built tenant is listed");
                let spec = Some(config.corpus_spec()?.clone());
                let default_variant = config.default_variant()?;
                match tenants.get_mut(&name) {
                    Some(tenant) => {
                        tenant.artifacts = artifacts;
                        tenant.epoch += 1;
                        tenant.spec = spec;
                        tenant.cache_share = config.cache_share;
                        tenant.default_variant = default_variant;
                    }
                    None => {
                        tenants.insert(
                            name,
                            Tenant {
                                artifacts,
                                epoch: 0,
                                spec,
                                cache_share: config.cache_share,
                                default_variant,
                            },
                        );
                    }
                }
            }
            for name in &diff.unchanged {
                let config = manifest.tenant(name).expect("unchanged tenant is listed");
                match tenants.get_mut(name) {
                    Some(tenant) => {
                        tenant.cache_share = config.cache_share;
                        tenant.default_variant = config.default_variant()?;
                    }
                    // Removed concurrently (a DELETE raced the unlocked
                    // builds of phase 2): the manifest still lists it, so
                    // it must come back — rebuilt below, after the lock.
                    None => vanished_unchanged.push(name.clone()),
                }
            }
            for name in &diff.removed {
                tenants.remove(name);
            }
        }
        // Phase 4: evict exactly the cache entries of tenants whose corpus
        // went away or changed.
        let swept: HashSet<&String> = diff.replaced.iter().chain(&diff.removed).collect();
        if !swept.is_empty() {
            self.cache
                .lock()
                .unwrap()
                .retain(|key, _| !swept.contains(&key.corpus));
        }
        // Phase 5: re-create manifest tenants that a concurrent removal
        // made vanish between the phase-1 snapshot and the commit; the
        // manifest is authoritative, so they are rebuilt rather than
        // silently skipped.
        for name in vanished_unchanged {
            let config = manifest.tenant(&name).expect("unchanged tenant is listed");
            self.register_spec(&name, config)
                .map_err(|e| ManifestError::new(format!("tenant {name:?}: {e}")))?;
            diff.unchanged.retain(|n| n != &name);
            diff.created.push(name);
        }
        diff.created.sort();
        Ok(diff)
    }

    /// Swaps in a rebuilt corpus for an existing tenant: bumps the tenant's
    /// epoch and evicts exactly that tenant's cached results.
    ///
    /// Errors with [`RegistryError::UnknownCorpus`] if the tenant does not
    /// exist (use [`CorpusRegistry::register`] to add tenants), and
    /// propagates artifact-build failures.
    pub fn refresh(&self, name: &str, corpus: impl Into<Arc<Corpus>>) -> Result<(), RegistryError> {
        if !self.contains(name) {
            return Err(RegistryError::UnknownCorpus(name.to_string()));
        }
        let artifacts = CorpusArtifacts::build(corpus)
            .map_err(|e| RegistryError::Request(RepagerError::Graph(e)))?;
        self.install(name.to_string(), artifacts, None);
        Ok(())
    }

    /// Rebuilds a tenant's artifacts from the corpus it already serves —
    /// what the HTTP `POST /v1/corpora/:name/refresh` endpoint rides on
    /// when no replacement corpus is shipped. Epoch-bump and cache-eviction
    /// semantics are exactly those of [`CorpusRegistry::refresh`]; returns
    /// the tenant's current epoch afterwards.
    ///
    /// The rebuild is epoch-guarded: if a concurrent [`refresh`] (or
    /// re-register) swapped in a *different* corpus while this rebuild ran,
    /// the stale in-place result is discarded instead of silently
    /// overwriting the newer corpus — the fresher refresh already bumped
    /// the epoch and swept the cache, so dropping the stale artifacts is
    /// the correct no-op.
    ///
    /// [`refresh`]: CorpusRegistry::refresh
    pub fn refresh_in_place(&self, name: &str) -> Result<u64, RegistryError> {
        let (artifacts, epoch, spec) = {
            let tenants = self.tenants.read().unwrap();
            let tenant = tenants
                .get(name)
                .ok_or_else(|| RegistryError::UnknownCorpus(name.to_string()))?;
            (tenant.artifacts.clone(), tenant.epoch, tenant.spec.clone())
        };
        // A spec with a configured snapshot reloads in O(read); anything
        // unusable about the snapshot degrades to the full rebuild below.
        let reloaded = spec
            .as_ref()
            .and_then(|spec| spec.snapshot.as_deref().map(|path| (spec, path)))
            .and_then(|(spec, path)| {
                match crate::snapshot::try_load(path, crate::snapshot::spec_fingerprint(spec)) {
                    Ok(artifacts) => Some(artifacts),
                    Err(e) => {
                        rpg_obs::log::warn(
                            "registry",
                            "snapshot unusable; rebuilding in place",
                            &[
                                ("tenant", name),
                                ("snapshot", path),
                                ("cause", &e.to_string()),
                            ],
                        );
                        None
                    }
                }
            });
        let rebuilt = match reloaded {
            Some(artifacts) => artifacts,
            None => CorpusArtifacts::build(artifacts.corpus_arc())
                .map_err(|e| RegistryError::Request(RepagerError::Graph(e)))?,
        };
        let (new_epoch, installed) = {
            let mut tenants = self.tenants.write().unwrap();
            match tenants.get_mut(name) {
                None => return Err(RegistryError::UnknownCorpus(name.to_string())),
                // Lost to a fresher refresh mid-rebuild: keep its corpus.
                Some(tenant) if tenant.epoch != epoch => (tenant.epoch, false),
                Some(tenant) => {
                    tenant.artifacts = rebuilt;
                    tenant.epoch += 1;
                    (tenant.epoch, true)
                }
            }
        };
        if installed {
            self.cache
                .lock()
                .unwrap()
                .retain(|key, _| key.corpus != name);
        }
        Ok(new_epoch)
    }

    fn install(&self, name: String, artifacts: Arc<CorpusArtifacts>, spec: Option<CorpusSpec>) {
        let replaced = {
            let mut tenants = self.tenants.write().unwrap();
            match tenants.get_mut(&name) {
                Some(tenant) => {
                    tenant.artifacts = artifacts;
                    tenant.epoch += 1;
                    // The corpus is whatever was just swapped in: a stale
                    // spec must not make a later manifest apply believe the
                    // old recipe still serves.
                    tenant.spec = spec;
                    true
                }
                None => {
                    tenants.insert(
                        name.clone(),
                        Tenant {
                            artifacts,
                            epoch: 0,
                            spec,
                            cache_share: None,
                            default_variant: None,
                        },
                    );
                    false
                }
            }
        };
        if replaced {
            // The epoch bump already makes the old entries unreachable;
            // evicting them keeps the shared cache from carrying dead
            // weight until LRU pressure gets around to them.
            self.cache
                .lock()
                .unwrap()
                .retain(|key, _| key.corpus != name);
        }
    }

    /// Removes a tenant and evicts its cached results. Returns whether the
    /// tenant existed.
    pub fn remove(&self, name: &str) -> bool {
        let existed = self.tenants.write().unwrap().remove(name).is_some();
        if existed {
            self.cache
                .lock()
                .unwrap()
                .retain(|key, _| key.corpus != name);
        }
        existed
    }

    /// Whether a tenant with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.read().unwrap().contains_key(name)
    }

    /// The registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().unwrap().len()
    }

    /// Whether the registry has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().unwrap().is_empty()
    }

    /// The current epoch of a tenant (0 until the first refresh).
    pub fn epoch(&self, name: &str) -> Option<u64> {
        self.tenants.read().unwrap().get(name).map(|t| t.epoch)
    }

    /// The artifacts currently serving a tenant.
    pub fn artifacts(&self, name: &str) -> Option<Arc<CorpusArtifacts>> {
        self.tenants
            .read()
            .unwrap()
            .get(name)
            .map(|t| t.artifacts.clone())
    }

    /// The corpus spec a tenant was built from, when it has one.
    pub fn spec(&self, name: &str) -> Option<CorpusSpec> {
        self.tenants
            .read()
            .unwrap()
            .get(name)
            .and_then(|t| t.spec.clone())
    }

    /// The model variant served when a request against this tenant omits
    /// one (`None` = the service-wide default).
    pub fn default_variant(&self, name: &str) -> Option<Variant> {
        self.tenants
            .read()
            .unwrap()
            .get(name)
            .and_then(|t| t.default_variant)
    }

    /// Sets (or clears) a tenant's cache share. Returns whether the share
    /// was applied: the tenant must exist and a set share must be at least
    /// 1 — a zero share would make the eviction loop self-evict the
    /// tenant's entry on every insert, so it is rejected like the other
    /// zero-valued tuning knobs. Shrinking a share does not evict until
    /// the tenant's next cache insert.
    pub fn set_cache_share(&self, name: &str, share: Option<usize>) -> bool {
        if share == Some(0) {
            return false;
        }
        match self.tenants.write().unwrap().get_mut(name) {
            Some(tenant) => {
                tenant.cache_share = share;
                true
            }
            None => false,
        }
    }

    /// The control-plane view of every tenant, sorted by name — what
    /// `GET /v1/corpora` serves.
    pub fn overview(&self) -> Vec<TenantOverview> {
        let mut rows: Vec<TenantOverview> = {
            let tenants = self.tenants.read().unwrap();
            tenants
                .iter()
                .map(|(name, tenant)| TenantOverview {
                    name: name.clone(),
                    epoch: tenant.epoch,
                    spec: tenant.spec.clone(),
                    cached_entries: 0,
                    cache_share: tenant.cache_share,
                })
                .collect()
        };
        {
            let cache = self.cache.lock().unwrap();
            for row in &mut rows {
                row.cached_entries = cache.keys().filter(|key| key.corpus == row.name).count();
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Serves one request against a named corpus, consulting the shared
    /// cache first.
    pub fn generate(
        &self,
        corpus: &str,
        request: &PathRequest<'_>,
    ) -> Result<Served, RegistryError> {
        self.generate_with_deadline(corpus, request, None)
    }

    /// As [`CorpusRegistry::generate`], with a cooperative wall-clock
    /// deadline the pipeline checks *between stages*: once it passes, the
    /// remaining stages are shed and the request fails with
    /// [`RepagerError::DeadlineExceeded`]. A cache hit is free and is
    /// served even past the deadline.
    pub fn generate_with_deadline(
        &self,
        corpus: &str,
        request: &PathRequest<'_>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Served, RegistryError> {
        self.generate_observed(corpus, request, deadline, None)
    }

    /// As [`CorpusRegistry::generate_with_deadline`], additionally arming
    /// the pipeline's span recorder: a fresh run records one span per
    /// stage into `trace`, a cache hit records a single `cache_hit` span.
    pub fn generate_observed(
        &self,
        corpus: &str,
        request: &PathRequest<'_>,
        deadline: Option<std::time::Instant>,
        trace: Option<rpg_obs::trace::StageTrace>,
    ) -> Result<Served, RegistryError> {
        let lookup_started = std::time::Instant::now();
        let (artifacts, epoch) = {
            let tenants = self.tenants.read().unwrap();
            let tenant = tenants
                .get(corpus)
                .ok_or_else(|| RegistryError::UnknownCorpus(corpus.to_string()))?;
            (tenant.artifacts.clone(), tenant.epoch)
        };
        let key = TenantKey {
            corpus: corpus.to_string(),
            fingerprint: RequestFingerprint::of(request).with_epoch(epoch),
        };
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(trace) = &trace {
                trace.record("cache_hit", lookup_started);
            }
            return Ok(Served {
                output: hit,
                cached: true,
            });
        }
        let output = crate::with_thread_scratch(|scratch| {
            scratch.set_deadline(deadline);
            scratch.set_trace(trace);
            let output = serve_request(
                artifacts.corpus(),
                artifacts.scholar(),
                artifacts.node_weights(),
                request,
                scratch,
            );
            // Disarm before the scratch outlives this request — the
            // thread-local scratch serves unrelated (deadline-less,
            // untraced) requests next.
            scratch.set_deadline(None);
            scratch.set_trace(None);
            output
        })?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let output = Arc::new(output);
        // A refresh may have raced the pipeline run: its sweep runs before
        // this insert, so a result keyed under the old epoch would sit in
        // the cache unreachable until LRU pressure evicts it. Insert only
        // if the tenant still serves the epoch the result was computed for,
        // holding the tenants lock across the insert so a concurrent
        // refresh cannot slip between the check and the insert (refresh
        // bumps the epoch under the write lock before it sweeps).
        {
            let tenants = self.tenants.read().unwrap();
            if let Some(tenant) = tenants.get(corpus).filter(|t| t.epoch == epoch) {
                let mut cache = self.cache.lock().unwrap();
                cache.insert(key, output.clone());
                // A bounded cache share caps how much of the shared cache
                // one tenant may occupy: past it, the tenant evicts its
                // *own* least-recently-used entry instead of squeezing the
                // others.
                if let Some(share) = tenant.cache_share {
                    while cache.keys().filter(|key| key.corpus == corpus).count() > share {
                        if cache.evict_lru_where(|key| key.corpus == corpus).is_none() {
                            break;
                        }
                    }
                }
            }
        }
        Ok(Served {
            output,
            cached: false,
        })
    }

    /// Cache occupancy and hit/miss counters across all tenants.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: cache.len(),
            capacity: cache.capacity(),
        }
    }

    /// Number of cached results belonging to one tenant.
    pub fn cached_entries_for(&self, name: &str) -> usize {
        self.cache
            .lock()
            .unwrap()
            .keys()
            .filter(|key| key.corpus == name)
            .count()
    }

    /// Drops all cached results for every tenant (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
    }
}

impl Default for CorpusRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpg_corpus::{generate, CorpusConfig};

    fn corpus(seed: u64) -> Corpus {
        generate(&CorpusConfig {
            seed,
            ..CorpusConfig::small()
        })
    }

    fn registry_with_two_tenants() -> CorpusRegistry {
        let registry = CorpusRegistry::new();
        registry.register("alpha", corpus(0xA)).unwrap();
        registry.register("beta", corpus(0xB)).unwrap();
        registry
    }

    fn first_query(registry: &CorpusRegistry, tenant: &str) -> (String, u16) {
        let artifacts = registry.artifacts(tenant).unwrap();
        let survey = artifacts.corpus().survey_bank().iter().next().unwrap();
        (survey.query.clone(), survey.year)
    }

    #[test]
    fn routes_requests_to_the_named_tenant() {
        let registry = registry_with_two_tenants();
        assert_eq!(registry.tenants(), ["alpha", "beta"]);
        let (query, year) = first_query(&registry, "alpha");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        let via_alpha = registry.generate("alpha", &request).unwrap();
        let via_beta = registry.generate("beta", &request).unwrap();
        // Same request, different corpora: the alpha corpus knows the
        // query's topic, and whatever beta returns is computed against its
        // own graph, not alpha's cached result.
        assert!(!via_alpha.output.reading_list.is_empty());
        assert!(!via_alpha.output.same_result(&via_beta.output));
        assert!(!via_beta.cached);
    }

    #[test]
    fn an_expired_deadline_sheds_the_pipeline_mid_compute() {
        let registry = registry_with_two_tenants();
        let (query, year) = first_query(&registry, "alpha");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        // A deadline captured before the pipeline starts is guaranteed
        // expired by the first inter-stage gate.
        let err = registry
            .generate_with_deadline("alpha", &request, Some(std::time::Instant::now()))
            .unwrap_err();
        assert_eq!(err, RegistryError::Request(RepagerError::DeadlineExceeded));
        // The shed run cached nothing, and the armed deadline does not
        // leak into the next (deadline-less) request on the same thread's
        // scratch.
        assert_eq!(registry.cache_stats().entries, 0);
        let served = registry.generate("alpha", &request).unwrap();
        assert!(!served.cached);
        assert!(!served.output.reading_list.is_empty());
    }

    #[test]
    fn a_cache_hit_is_served_even_past_its_deadline() {
        let registry = registry_with_two_tenants();
        let (query, year) = first_query(&registry, "alpha");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        registry.generate("alpha", &request).unwrap();
        let served = registry
            .generate_with_deadline("alpha", &request, Some(std::time::Instant::now()))
            .unwrap();
        assert!(served.cached, "a hit costs no compute, so nothing to shed");
    }

    #[test]
    fn identical_queries_against_different_tenants_do_not_collide() {
        let registry = registry_with_two_tenants();
        let (query, year) = first_query(&registry, "alpha");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        registry.generate("alpha", &request).unwrap();
        registry.generate("beta", &request).unwrap();
        let stats = registry.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
        // Repeats hit per tenant.
        assert!(registry.generate("alpha", &request).unwrap().cached);
        assert!(registry.generate("beta", &request).unwrap().cached);
        assert_eq!(registry.cache_stats().hits, 2);
    }

    #[test]
    fn refresh_evicts_only_that_tenants_entries() {
        let registry = registry_with_two_tenants();
        let (alpha_query, alpha_year) = first_query(&registry, "alpha");
        let (beta_query, beta_year) = first_query(&registry, "beta");
        let alpha_request = PathRequest {
            max_year: Some(alpha_year),
            ..PathRequest::new(&alpha_query, 20)
        };
        let beta_request = PathRequest {
            max_year: Some(beta_year),
            ..PathRequest::new(&beta_query, 20)
        };
        registry.generate("alpha", &alpha_request).unwrap();
        registry.generate("beta", &beta_request).unwrap();
        assert_eq!(registry.cached_entries_for("alpha"), 1);
        assert_eq!(registry.cached_entries_for("beta"), 1);

        registry.refresh("alpha", corpus(0xA2)).unwrap();
        assert_eq!(registry.epoch("alpha"), Some(1));
        assert_eq!(registry.epoch("beta"), Some(0));
        assert_eq!(registry.cached_entries_for("alpha"), 0);
        assert_eq!(registry.cached_entries_for("beta"), 1);

        // Beta still hits; alpha recomputes against the refreshed corpus.
        assert!(registry.generate("beta", &beta_request).unwrap().cached);
        assert!(!registry.generate("alpha", &alpha_request).unwrap().cached);
    }

    #[test]
    fn refresh_in_place_bumps_the_epoch_and_evicts_only_that_tenant() {
        let registry = registry_with_two_tenants();
        let (alpha_query, alpha_year) = first_query(&registry, "alpha");
        let (beta_query, beta_year) = first_query(&registry, "beta");
        let alpha_request = PathRequest {
            max_year: Some(alpha_year),
            ..PathRequest::new(&alpha_query, 20)
        };
        let beta_request = PathRequest {
            max_year: Some(beta_year),
            ..PathRequest::new(&beta_query, 20)
        };
        let before = registry.generate("alpha", &alpha_request).unwrap();
        registry.generate("beta", &beta_request).unwrap();

        assert_eq!(registry.refresh_in_place("alpha").unwrap(), 1);
        assert_eq!(registry.epoch("alpha"), Some(1));
        assert_eq!(registry.cached_entries_for("alpha"), 0);
        assert_eq!(registry.cached_entries_for("beta"), 1);

        // The rebuilt artifacts serve the same corpus, so the recomputed
        // answer matches the pre-refresh one — but it is a recomputation.
        let after = registry.generate("alpha", &alpha_request).unwrap();
        assert!(!after.cached);
        assert!(after.output.same_result(&before.output));

        assert!(matches!(
            registry.refresh_in_place("ghost"),
            Err(RegistryError::UnknownCorpus(name)) if name == "ghost"
        ));
    }

    #[test]
    fn refresh_of_unknown_tenant_is_an_error() {
        let registry = CorpusRegistry::new();
        assert!(matches!(
            registry.refresh("ghost", corpus(1)),
            Err(RegistryError::UnknownCorpus(name)) if name == "ghost"
        ));
        assert!(matches!(
            registry.generate("ghost", &PathRequest::new("anything", 5)),
            Err(RegistryError::UnknownCorpus(_))
        ));
    }

    #[test]
    fn reregistering_a_tenant_bumps_the_epoch_and_sweeps() {
        let registry = CorpusRegistry::new();
        registry.register("solo", corpus(7)).unwrap();
        let (query, year) = first_query(&registry, "solo");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        registry.generate("solo", &request).unwrap();
        assert_eq!(registry.cached_entries_for("solo"), 1);
        registry.register("solo", corpus(8)).unwrap();
        assert_eq!(registry.epoch("solo"), Some(1));
        assert_eq!(registry.cached_entries_for("solo"), 0);
    }

    #[test]
    fn remove_drops_tenant_and_its_cache_entries() {
        let registry = registry_with_two_tenants();
        let (query, year) = first_query(&registry, "alpha");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        };
        registry.generate("alpha", &request).unwrap();
        assert!(registry.remove("alpha"));
        assert!(!registry.remove("alpha"));
        assert_eq!(registry.cached_entries_for("alpha"), 0);
        assert!(!registry.contains("alpha"));
        assert_eq!(registry.len(), 1);
        assert!(matches!(
            registry.generate("alpha", &request),
            Err(RegistryError::UnknownCorpus(_))
        ));
    }

    fn spec_manifest(tenants: &[(&str, u64)]) -> Manifest {
        let map: HashMap<String, TenantConfig> = tenants
            .iter()
            .map(|&(name, seed)| {
                (
                    name.to_string(),
                    TenantConfig::for_spec(CorpusSpec {
                        papers_per_topic: Some(20),
                        ..CorpusSpec::small(seed)
                    }),
                )
            })
            .collect();
        Manifest {
            admin_keys: None,
            admin_key_hashes: None,
            log_level: None,
            tenants: Some(map),
        }
    }

    fn cache_one(registry: &CorpusRegistry, tenant: &str) {
        let (query, year) = first_query(registry, tenant);
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 10)
        };
        registry.generate(tenant, &request).unwrap();
    }

    #[test]
    fn apply_manifest_creates_replaces_and_removes_by_spec_diff() {
        let registry = CorpusRegistry::new();
        let diff = registry
            .apply_manifest(&spec_manifest(&[("alpha", 1), ("beta", 2)]))
            .unwrap();
        assert_eq!(diff.created, ["alpha", "beta"]);
        assert!(!diff.is_noop());
        assert_eq!(registry.tenants(), ["alpha", "beta"]);
        assert_eq!(registry.spec("alpha").unwrap().seed, 1);

        cache_one(&registry, "alpha");
        cache_one(&registry, "beta");

        // Same manifest again: nothing rebuilt, cache intact.
        let diff = registry
            .apply_manifest(&spec_manifest(&[("alpha", 1), ("beta", 2)]))
            .unwrap();
        assert!(diff.is_noop(), "{diff:?}");
        assert_eq!(diff.unchanged, ["alpha", "beta"]);
        assert_eq!(registry.cached_entries_for("alpha"), 1);
        assert_eq!(registry.cached_entries_for("beta"), 1);

        // New seed for alpha: replaced, epoch bumped, only alpha's cache
        // swept; beta untouched.
        let diff = registry
            .apply_manifest(&spec_manifest(&[("alpha", 9), ("beta", 2)]))
            .unwrap();
        assert_eq!(diff.replaced, ["alpha"]);
        assert_eq!(diff.unchanged, ["beta"]);
        assert_eq!(registry.epoch("alpha"), Some(1));
        assert_eq!(registry.epoch("beta"), Some(0));
        assert_eq!(registry.cached_entries_for("alpha"), 0);
        assert_eq!(registry.cached_entries_for("beta"), 1);

        // Beta dropped from the manifest: removed with its cache entries.
        let diff = registry
            .apply_manifest(&spec_manifest(&[("alpha", 9)]))
            .unwrap();
        assert_eq!(diff.removed, ["beta"]);
        assert!(!registry.contains("beta"));
        assert_eq!(registry.cached_entries_for("beta"), 0);
        assert_eq!(registry.tenants(), ["alpha"]);
    }

    #[test]
    fn apply_manifest_replaces_tenants_registered_without_a_spec() {
        let registry = CorpusRegistry::new();
        registry.register("alpha", corpus(0xA)).unwrap();
        cache_one(&registry, "alpha");
        // A raw-registered tenant has no spec, so a manifest naming it must
        // rebuild it (the recipes cannot be proven equal).
        let diff = registry
            .apply_manifest(&spec_manifest(&[("alpha", 1)]))
            .unwrap();
        assert_eq!(diff.replaced, ["alpha"]);
        assert_eq!(registry.epoch("alpha"), Some(1));
        assert_eq!(registry.cached_entries_for("alpha"), 0);
        assert_eq!(registry.spec("alpha").unwrap().seed, 1);
    }

    #[test]
    fn apply_manifest_rejects_invalid_manifests_without_touching_tenants() {
        let registry = CorpusRegistry::new();
        registry.register("keep", corpus(3)).unwrap();
        let mut manifest = spec_manifest(&[("bad", 1)]);
        manifest
            .tenants
            .as_mut()
            .unwrap()
            .get_mut("bad")
            .unwrap()
            .weight = Some(0);
        assert!(registry.apply_manifest(&manifest).is_err());
        assert_eq!(registry.tenants(), ["keep"], "failed apply must be atomic");
    }

    #[test]
    fn register_spec_records_tuning_and_replaces_like_refresh() {
        let registry = CorpusRegistry::new();
        let mut config = TenantConfig::for_spec(CorpusSpec {
            papers_per_topic: Some(20),
            ..CorpusSpec::small(5)
        });
        config.variant = Some("NEWST-C".to_string());
        config.cache_share = Some(1);
        assert_eq!(registry.register_spec("solo", &config).unwrap(), 0);
        assert_eq!(
            registry.default_variant("solo"),
            Some(Variant::CandidatesOnly)
        );
        assert_eq!(registry.spec("solo").unwrap().seed, 5);
        // Replacing via a new spec bumps the epoch.
        config.corpus.as_mut().unwrap().seed = 6;
        assert_eq!(registry.register_spec("solo", &config).unwrap(), 1);
        let overview = registry.overview();
        assert_eq!(overview.len(), 1);
        assert_eq!(overview[0].name, "solo");
        assert_eq!(overview[0].epoch, 1);
        assert_eq!(overview[0].cache_share, Some(1));
        assert_eq!(overview[0].spec.as_ref().unwrap().seed, 6);
    }

    #[test]
    fn cache_share_caps_one_tenants_entries_only() {
        let registry = CorpusRegistry::new();
        registry.register("alpha", corpus(0xA)).unwrap();
        registry.register("beta", corpus(0xB)).unwrap();
        assert!(registry.set_cache_share("alpha", Some(1)));
        assert!(!registry.set_cache_share("ghost", Some(1)));
        let artifacts = registry.artifacts("alpha").unwrap();
        let queries: Vec<(String, u16)> = artifacts
            .corpus()
            .survey_bank()
            .iter()
            .take(3)
            .map(|s| (s.query.clone(), s.year))
            .collect();
        for (query, year) in &queries {
            let request = PathRequest {
                max_year: Some(*year),
                ..PathRequest::new(query, 10)
            };
            registry.generate("alpha", &request).unwrap();
        }
        cache_one(&registry, "beta");
        assert_eq!(
            registry.cached_entries_for("alpha"),
            1,
            "share of 1 keeps only the most recent entry"
        );
        assert_eq!(registry.cached_entries_for("beta"), 1);
        // The survivor is the most recent query: it still hits.
        let (query, year) = &queries[2];
        let request = PathRequest {
            max_year: Some(*year),
            ..PathRequest::new(query, 10)
        };
        assert!(registry.generate("alpha", &request).unwrap().cached);
    }

    #[test]
    fn spec_with_snapshot_loads_from_it() {
        let path = std::env::temp_dir().join(format!(
            "rpg-registry-snap-good-{}.rpgsnap",
            std::process::id()
        ));
        let spec = CorpusSpec {
            papers_per_topic: Some(20),
            ..CorpusSpec::small(777)
        };
        let artifacts = CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap();
        let bytes =
            crate::snapshot::encode(&artifacts, crate::snapshot::spec_fingerprint(&spec)).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let registry = CorpusRegistry::new();
        let snap_spec = CorpusSpec {
            snapshot: Some(path.to_string_lossy().into_owned()),
            ..spec.clone()
        };
        registry
            .register_spec("from-snap", &TenantConfig::for_spec(snap_spec.clone()))
            .unwrap();
        registry
            .register_spec("from-spec", &TenantConfig::for_spec(spec))
            .unwrap();
        // Snapshot-loaded and spec-built tenants serve identical results.
        let (query, year) = first_query(&registry, "from-snap");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 15)
        };
        let a = registry.generate("from-snap", &request).unwrap();
        let b = registry.generate("from-spec", &request).unwrap();
        assert!(a.output.same_result(&b.output));
        // Refreshing in place reloads from the snapshot and bumps the epoch.
        assert_eq!(registry.refresh_in_place("from-snap").unwrap(), 1);
        let refreshed = registry.generate("from-snap", &request).unwrap();
        assert!(!refreshed.cached, "refresh must evict the tenant's cache");
        assert!(refreshed.output.same_result(&b.output));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unusable_snapshots_fall_back_to_a_full_build() {
        let spec = CorpusSpec {
            papers_per_topic: Some(20),
            ..CorpusSpec::small(778)
        };
        let artifacts = CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap();
        // A snapshot whose fingerprint belongs to a *different* spec.
        let stale = std::env::temp_dir().join(format!(
            "rpg-registry-snap-stale-{}.rpgsnap",
            std::process::id()
        ));
        let wrong = crate::snapshot::spec_fingerprint(&CorpusSpec::small(1));
        std::fs::write(&stale, crate::snapshot::encode(&artifacts, wrong).unwrap()).unwrap();

        let registry = CorpusRegistry::new();
        for (tenant, path) in [
            ("stale-snap", stale.to_string_lossy().into_owned()),
            ("missing-snap", "/nonexistent/rpg.rpgsnap".to_string()),
        ] {
            let config = TenantConfig::for_spec(CorpusSpec {
                snapshot: Some(path),
                ..spec.clone()
            });
            registry.register_spec(tenant, &config).unwrap();
        }
        registry
            .register_spec("reference", &TenantConfig::for_spec(spec))
            .unwrap();
        let (query, year) = first_query(&registry, "reference");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 15)
        };
        let expected = registry.generate("reference", &request).unwrap();
        for tenant in ["stale-snap", "missing-snap"] {
            let served = registry.generate(tenant, &request).unwrap();
            assert!(
                served.output.same_result(&expected.output),
                "tenant {tenant} must have been rebuilt from its spec"
            );
        }
        std::fs::remove_file(&stale).ok();
    }

    #[test]
    fn zero_cache_shares_are_rejected() {
        let registry = registry_with_two_tenants();
        assert!(!registry.set_cache_share("alpha", Some(0)));
        assert!(registry.set_cache_share("alpha", Some(1)));
        assert!(registry.set_cache_share("alpha", None));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let registry = Arc::new(CorpusRegistry::new());
        registry.register("shared", corpus(3)).unwrap();
        let (query, year) = first_query(&registry, "shared");
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 15)
        };
        let reference = registry.generate("shared", &request).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let registry = registry.clone();
                let request = request.clone();
                let expected = reference.output.clone();
                scope.spawn(move || {
                    let served = registry.generate("shared", &request).unwrap();
                    assert!(served.output.same_result(&expected));
                });
            }
        });
    }
}
