//! Versioned binary snapshots of [`CorpusArtifacts`]: build once, map
//! anywhere.
//!
//! Building a tenant's artifacts from its [`CorpusSpec`] means generating
//! the corpus, laying out the CSR citation graph, tokenising every paper
//! into the inverted index, and iterating PageRank to convergence — O(build)
//! work paid on every process start and every manifest reload.  A snapshot
//! persists the expensive parts in a checksummed, versioned binary container
//! so a process can come up in O(read):
//!
//! * **container** — an 8-byte magic, a format version, the producing spec's
//!   fingerprint, and a section table (kind, offset, length, CRC-32 per
//!   section) followed by the payloads.  Every section is independently
//!   checksummed; [`decode`] refuses the whole snapshot on the first
//!   mismatch and never returns a silently-wrong artifact.
//! * **typed columns** — each section encodes its natural column layout
//!   rather than a generic object graph: CSR offsets are delta+varint
//!   (monotonic), node/doc id columns are zigzag-delta+varint, PageRank
//!   scores are raw little-endian `f64` bits, and paper/term metadata uses
//!   length-prefixed string tables.
//! * **fingerprint gate** — [`spec_fingerprint`] hashes the generator
//!   fields of a [`CorpusSpec`] (seed, scale, papers-per-topic — *not* the
//!   `snapshot` path itself); [`decode`] only accepts a snapshot whose
//!   embedded fingerprint equals the expected one, so a stale file can slow
//!   a boot down (one warning, full rebuild) but never change what is
//!   served.
//!
//! Only the expensive state is persisted (papers, references, out-CSR,
//! PageRank, inverted index, catalogue metadata); cheap derivations — the
//! in-CSR direction, engine metadata columns, the seed engine, Eq. (3) node
//! weights — are recomputed at load, which keeps the format small and the
//! cross-layer invariants checkable.

use crate::manifest::CorpusSpec;
use rpg_corpus::citation::Reference;
use rpg_corpus::{
    Corpus, Paper, PaperId, PaperKind, SurveyBank, TopicCatalog, TopicId, VenueId, VenueTable,
};
use rpg_engines::EngineIndex;
use rpg_graph::pagerank::PageRankScores;
use rpg_graph::{CitationGraph, NodeId};
use rpg_repager::artifacts::CorpusArtifacts;
use rpg_textindex::inverted::{DocStats, Field, InvertedIndex, Posting};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The 8-byte container magic.
pub const MAGIC: [u8; 8] = *b"RPGSNAP1";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// The fingerprint embedded by snapshots of artifacts that were not built
/// from a [`CorpusSpec`] (e.g. a corpus registered directly over the wire).
/// Such snapshots can be inspected and exported but never match a spec.
pub const NO_SPEC_FINGERPRINT: u64 = 0;

/// The kind tag of one snapshot section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Paper metadata: string tables for titles/abstracts plus the numeric
    /// per-paper columns.
    Papers,
    /// Per-paper reference lists with in-text occurrence counts.
    Refs,
    /// The out-direction CSR of the citation graph (the in-direction is
    /// rebuilt at load).
    Graph,
    /// Converged PageRank scores (raw little-endian `f64` bits).
    PageRank,
    /// The inverted text index: vocabulary string table, per-document
    /// length stats, and per-term postings for both fields.
    Index,
    /// Topic catalogue, venue table and survey bank, as checksummed JSON.
    Meta,
}

impl SectionKind {
    /// Every section a complete snapshot carries, in container order.
    pub const ALL: [SectionKind; 6] = [
        SectionKind::Papers,
        SectionKind::Refs,
        SectionKind::Graph,
        SectionKind::PageRank,
        SectionKind::Index,
        SectionKind::Meta,
    ];

    /// The wire tag of this kind.
    pub fn tag(self) -> u8 {
        match self {
            SectionKind::Papers => 1,
            SectionKind::Refs => 2,
            SectionKind::Graph => 3,
            SectionKind::PageRank => 4,
            SectionKind::Index => 5,
            SectionKind::Meta => 6,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<SectionKind> {
        SectionKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Human-readable section name, as printed by `rpg snapshot inspect`.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Papers => "papers",
            SectionKind::Refs => "refs",
            SectionKind::Graph => "graph",
            SectionKind::PageRank => "pagerank",
            SectionKind::Index => "index",
            SectionKind::Meta => "meta",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a byte buffer is not a usable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The container claims a format version this build does not read.
    UnsupportedVersion {
        /// The version in the container.
        found: u16,
    },
    /// The embedded spec fingerprint does not match the spec the caller is
    /// loading for.
    FingerprintMismatch {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint in the container.
        found: u64,
    },
    /// The buffer ends before the structure it claims to hold.
    Truncated {
        /// What was being read when the bytes ran out.
        what: String,
    },
    /// A required section is absent from the section table.
    SectionMissing {
        /// The absent section.
        kind: SectionKind,
    },
    /// A section's bytes do not match its recorded CRC-32.
    ChecksumMismatch {
        /// The corrupted section.
        kind: SectionKind,
    },
    /// The bytes parse but do not describe a consistent artifact.
    Malformed {
        /// Human-readable description of the inconsistency.
        what: String,
    },
    /// The artifacts cannot be encoded (an invariant the format relies on
    /// does not hold).
    Unsupported {
        /// Human-readable description of the unsupported shape.
        what: String,
    },
    /// Reading the snapshot file failed.
    Io {
        /// The rendered I/O error.
        what: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "spec fingerprint mismatch: snapshot was built for \
                 {found:#018x}, expected {expected:#018x}"
            ),
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::SectionMissing { kind } => {
                write!(f, "snapshot has no {kind} section")
            }
            SnapshotError::ChecksumMismatch { kind } => {
                write!(f, "checksum mismatch in {kind} section")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Unsupported { what } => {
                write!(f, "artifacts cannot be snapshotted: {what}")
            }
            SnapshotError::Io { what } => write!(f, "snapshot read failed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    fn malformed(what: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed { what: what.into() }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-based, std-only.

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 (IEEE 802.3 polynomial) of `bytes`, as recorded per section.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive column codecs.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over one section payload.  Every
/// overrun becomes a typed [`SnapshotError::Truncated`] naming the section,
/// never a panic.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Reader<'a> {
        Reader {
            bytes,
            pos: 0,
            what,
        }
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            what: self.what.to_string(),
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(self.truncated());
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(SnapshotError::malformed(format!(
                    "varint overflow in {}",
                    self.what
                )));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapshotError::malformed(format!(
                    "varint overflow in {}",
                    self.what
                )));
            }
        }
    }

    fn zigzag(&mut self) -> Result<i64, SnapshotError> {
        Ok(unzigzag(self.varint()?))
    }

    /// A varint that is used as an element count: each element occupies at
    /// least one payload byte, so any claim beyond the remaining bytes is
    /// malformed — this bounds allocations on corrupted input.
    fn count(&mut self) -> Result<usize, SnapshotError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(SnapshotError::malformed(format!(
                "{} claims {n} elements with only {} bytes left",
                self.what,
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::malformed(format!("invalid UTF-8 string in {}", self.what)))
    }
}

// ---------------------------------------------------------------------------
// Spec fingerprint.

/// A 64-bit FNV-1a fingerprint of the *generator* fields of a spec: seed,
/// canonical scale, and papers-per-topic.  The `snapshot` path field is
/// deliberately excluded — where a snapshot lives must not change whether
/// it is accepted.  Never returns [`NO_SPEC_FINGERPRINT`].
pub fn spec_fingerprint(spec: &CorpusSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    write(b"rpg-snapshot-spec/v1");
    write(&spec.seed.to_le_bytes());
    // Canonicalise the scale so `None` and `"small"` (and `"full"` vs the
    // accepted alias `"default"`) fingerprint identically; an unparseable
    // scale (rejected by validation anyway) hashes its raw spelling.
    match spec.corpus_scale() {
        Ok(scale) => write(scale.name().as_bytes()),
        Err(_) => write(spec.scale.as_deref().unwrap_or("").as_bytes()),
    }
    match spec.papers_per_topic {
        Some(papers) => {
            write(&[1]);
            write(&(papers as u64).to_le_bytes());
        }
        None => write(&[0]),
    }
    if hash == NO_SPEC_FINGERPRINT {
        hash = 1;
    }
    hash
}

// ---------------------------------------------------------------------------
// Section payload codecs.

/// The JSON-serialised remainder of the corpus: small, irregular structures
/// where a typed-column layout would buy nothing.
#[derive(Serialize, Deserialize)]
struct MetaSection {
    topics: TopicCatalog,
    venues: VenueTable,
    survey_bank: SurveyBank,
}

fn encode_papers(papers: &[Paper], out: &mut Vec<u8>) {
    put_varint(out, papers.len() as u64);
    for paper in papers {
        put_str(out, &paper.title);
        put_str(out, &paper.abstract_text);
        put_varint(out, u64::from(paper.year));
        put_varint(out, u64::from(paper.venue.0));
        put_varint(out, u64::from(paper.topic.0));
        out.push(match paper.kind {
            PaperKind::Research => 0,
            PaperKind::Survey => 1,
        });
        put_varint(out, u64::from(paper.pages));
        out.push(u8::from(paper.parse_ok));
    }
}

fn decode_papers(bytes: &[u8]) -> Result<Vec<Paper>, SnapshotError> {
    let mut r = Reader::new(bytes, "papers section");
    let n = r.count()?;
    let mut papers = Vec::with_capacity(n);
    for i in 0..n {
        let title = r.string()?;
        let abstract_text = r.string()?;
        let year = u16::try_from(r.varint()?)
            .map_err(|_| SnapshotError::malformed("paper year out of range"))?;
        let venue = VenueId(
            u32::try_from(r.varint()?)
                .map_err(|_| SnapshotError::malformed("venue id out of range"))?,
        );
        let topic = TopicId(
            u32::try_from(r.varint()?)
                .map_err(|_| SnapshotError::malformed("topic id out of range"))?,
        );
        let kind = match r.u8()? {
            0 => PaperKind::Research,
            1 => PaperKind::Survey,
            other => {
                return Err(SnapshotError::malformed(format!(
                    "unknown paper kind tag {other}"
                )))
            }
        };
        let pages = u16::try_from(r.varint()?)
            .map_err(|_| SnapshotError::malformed("paper pages out of range"))?;
        let parse_ok = r.u8()? != 0;
        papers.push(Paper {
            id: PaperId::from_index(i),
            title,
            abstract_text,
            year,
            venue,
            topic,
            kind,
            pages,
            parse_ok,
        });
    }
    if !r.is_done() {
        return Err(SnapshotError::malformed("trailing bytes in papers section"));
    }
    Ok(papers)
}

fn encode_refs(references: &[Vec<Reference>], out: &mut Vec<u8>) {
    put_varint(out, references.len() as u64);
    for refs in references {
        put_varint(out, refs.len() as u64);
        let mut prev = 0i64;
        for r in refs {
            let cited = i64::from(r.cited.0);
            put_zigzag(out, cited - prev);
            prev = cited;
            out.push(r.occurrences);
        }
    }
}

fn decode_refs(bytes: &[u8]) -> Result<Vec<Vec<Reference>>, SnapshotError> {
    let mut r = Reader::new(bytes, "refs section");
    let n = r.count()?;
    let mut references = Vec::with_capacity(n);
    for _ in 0..n {
        let count = r.count()?;
        let mut refs = Vec::with_capacity(count);
        let mut prev = 0i64;
        for _ in 0..count {
            let cited = prev + r.zigzag()?;
            prev = cited;
            let cited = u32::try_from(cited)
                .map_err(|_| SnapshotError::malformed("cited paper id out of range"))?;
            refs.push(Reference {
                cited: PaperId(cited),
                occurrences: r.u8()?,
            });
        }
        references.push(refs);
    }
    if !r.is_done() {
        return Err(SnapshotError::malformed("trailing bytes in refs section"));
    }
    Ok(references)
}

fn encode_graph(graph: &CitationGraph, out: &mut Vec<u8>) {
    let offsets = graph.out_offsets();
    put_varint(out, (offsets.len() - 1) as u64);
    let mut prev = 0u64;
    for &o in offsets {
        put_varint(out, u64::from(o) - prev); // monotonic: plain deltas
        prev = u64::from(o);
    }
    let targets = graph.out_targets();
    put_varint(out, targets.len() as u64);
    let mut prev = 0i64;
    for t in targets {
        let id = i64::from(t.0);
        put_zigzag(out, id - prev);
        prev = id;
    }
}

fn decode_graph(bytes: &[u8]) -> Result<CitationGraph, SnapshotError> {
    let mut r = Reader::new(bytes, "graph section");
    let n = r.count()?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    for _ in 0..=n {
        acc += r.varint()?;
        let offset =
            u32::try_from(acc).map_err(|_| SnapshotError::malformed("CSR offset out of range"))?;
        offsets.push(offset);
    }
    let m = r.count()?;
    let mut targets = Vec::with_capacity(m);
    let mut prev = 0i64;
    for _ in 0..m {
        let id = prev + r.zigzag()?;
        prev = id;
        let id =
            u32::try_from(id).map_err(|_| SnapshotError::malformed("CSR target out of range"))?;
        targets.push(NodeId(id));
    }
    if !r.is_done() {
        return Err(SnapshotError::malformed("trailing bytes in graph section"));
    }
    CitationGraph::from_csr_parts(offsets, targets)
        .map_err(|e| SnapshotError::malformed(e.to_string()))
}

fn encode_pagerank(pagerank: &PageRankScores, out: &mut Vec<u8>) {
    put_varint(out, pagerank.scores.len() as u64);
    for &score in &pagerank.scores {
        put_u64(out, score.to_bits());
    }
    put_varint(out, pagerank.iterations as u64);
    put_u64(out, pagerank.delta.to_bits());
}

fn decode_pagerank(bytes: &[u8]) -> Result<PageRankScores, SnapshotError> {
    let mut r = Reader::new(bytes, "pagerank section");
    let n = r.count()?;
    let mut scores = Vec::with_capacity(n);
    for _ in 0..n {
        scores.push(f64::from_bits(r.u64()?));
    }
    let iterations = r.varint()? as usize;
    let delta = f64::from_bits(r.u64()?);
    if !r.is_done() {
        return Err(SnapshotError::malformed(
            "trailing bytes in pagerank section",
        ));
    }
    Ok(PageRankScores {
        scores,
        iterations,
        delta,
    })
}

fn encode_index(
    index: &InvertedIndex,
    doc_count: usize,
    out: &mut Vec<u8>,
) -> Result<(), SnapshotError> {
    let terms: Vec<&str> = index.vocabulary().iter().map(|(_, t)| t).collect();
    put_varint(out, terms.len() as u64);
    for term in &terms {
        put_str(out, term);
    }
    put_varint(out, doc_count as u64);
    for doc in 0..doc_count as u32 {
        let stats = index
            .doc_stats(doc)
            .ok_or_else(|| SnapshotError::Unsupported {
                what: format!("inverted index has no stats for document {doc}"),
            })?;
        put_varint(out, u64::from(stats.title_len));
        put_varint(out, u64::from(stats.body_len));
    }
    for field in [Field::Title, Field::Body] {
        for term in &terms {
            let postings = index.postings(field, term);
            put_varint(out, postings.len() as u64);
            let mut prev = 0i64;
            for p in postings {
                let doc = i64::from(p.doc);
                put_zigzag(out, doc - prev);
                prev = doc;
                put_varint(out, u64::from(p.term_frequency));
            }
        }
    }
    Ok(())
}

fn decode_index(bytes: &[u8]) -> Result<InvertedIndex, SnapshotError> {
    let mut r = Reader::new(bytes, "index section");
    let term_count = r.count()?;
    let mut terms = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        terms.push(r.string()?);
    }
    let doc_count = r.count()?;
    let mut doc_stats = Vec::with_capacity(doc_count);
    for doc in 0..doc_count as u32 {
        let title_len = u32::try_from(r.varint()?)
            .map_err(|_| SnapshotError::malformed("title length out of range"))?;
        let body_len = u32::try_from(r.varint()?)
            .map_err(|_| SnapshotError::malformed("body length out of range"))?;
        doc_stats.push((
            doc,
            DocStats {
                title_len,
                body_len,
            },
        ));
    }
    let mut fields = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut per_term = Vec::with_capacity(term_count);
        for _ in 0..term_count {
            let count = r.count()?;
            let mut postings = Vec::with_capacity(count);
            let mut prev = 0i64;
            for _ in 0..count {
                let doc = prev + r.zigzag()?;
                prev = doc;
                let doc = u32::try_from(doc)
                    .map_err(|_| SnapshotError::malformed("posting doc id out of range"))?;
                let term_frequency = u32::try_from(r.varint()?)
                    .map_err(|_| SnapshotError::malformed("term frequency out of range"))?;
                postings.push(Posting {
                    doc,
                    term_frequency,
                });
            }
            per_term.push(postings);
        }
        fields.push(per_term);
    }
    if !r.is_done() {
        return Err(SnapshotError::malformed("trailing bytes in index section"));
    }
    let body = fields.pop().expect("two fields");
    let title = fields.pop().expect("two fields");
    InvertedIndex::from_parts(terms, title, body, doc_stats).map_err(SnapshotError::malformed)
}

// ---------------------------------------------------------------------------
// Container encode / decode.

/// One section-table row, as read back by [`inspect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section's kind.
    pub kind: SectionKind,
    /// Byte offset of the payload within the snapshot.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// The recorded CRC-32 of the payload.
    pub crc: u32,
    /// Whether the payload bytes actually hash to `crc`.
    pub crc_ok: bool,
}

/// Container-level metadata of a snapshot, as shown by
/// `rpg snapshot inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The container format version.
    pub format_version: u16,
    /// The embedded spec fingerprint ([`NO_SPEC_FINGERPRINT`] for artifacts
    /// not built from a spec).
    pub fingerprint: u64,
    /// Total snapshot size in bytes.
    pub total_len: u64,
    /// The section table, in container order.
    pub sections: Vec<SectionInfo>,
}

const HEADER_LEN: usize = 8 + 2 + 8 + 2;
const TABLE_ENTRY_LEN: usize = 1 + 8 + 8 + 4;

/// Encodes the artifacts into `out` as a complete snapshot container.
///
/// `fingerprint` is the producing spec's [`spec_fingerprint`] (or
/// [`NO_SPEC_FINGERPRINT`] when the artifacts have no spec).  The encoding
/// is deterministic: equal artifacts and fingerprint produce identical
/// bytes.
pub fn encode_into(
    artifacts: &CorpusArtifacts,
    fingerprint: u64,
    out: &mut Vec<u8>,
) -> Result<(), SnapshotError> {
    let corpus = artifacts.corpus();
    let references: Vec<Vec<Reference>> = (0..corpus.len())
        .map(|i| corpus.references_of(PaperId::from_index(i)).to_vec())
        .collect();

    let mut payloads: Vec<(SectionKind, Vec<u8>)> = Vec::with_capacity(SectionKind::ALL.len());
    for kind in SectionKind::ALL {
        let mut payload = Vec::new();
        match kind {
            SectionKind::Papers => encode_papers(corpus.papers(), &mut payload),
            SectionKind::Refs => encode_refs(&references, &mut payload),
            SectionKind::Graph => encode_graph(corpus.graph(), &mut payload),
            SectionKind::PageRank => encode_pagerank(artifacts.pagerank(), &mut payload),
            SectionKind::Index => {
                encode_index(artifacts.index().inverted(), corpus.len(), &mut payload)?
            }
            SectionKind::Meta => {
                let meta = MetaSection {
                    topics: corpus.topics().clone(),
                    venues: corpus.venues().clone(),
                    survey_bank: corpus.survey_bank().clone(),
                };
                let json =
                    serde_json::to_string(&meta).map_err(|e| SnapshotError::Unsupported {
                        what: format!("metadata does not serialise: {e:?}"),
                    })?;
                payload.extend_from_slice(json.as_bytes());
            }
        }
        payloads.push((kind, payload));
    }

    out.extend_from_slice(&MAGIC);
    put_u16(out, FORMAT_VERSION);
    put_u64(out, fingerprint);
    put_u16(out, payloads.len() as u16);
    let mut offset = (HEADER_LEN + TABLE_ENTRY_LEN * payloads.len()) as u64;
    for (kind, payload) in &payloads {
        out.push(kind.tag());
        put_u64(out, offset);
        put_u64(out, payload.len() as u64);
        put_u32(out, crc32(payload));
        offset += payload.len() as u64;
    }
    for (_, payload) in &payloads {
        out.extend_from_slice(payload);
    }
    Ok(())
}

/// [`encode_into`] into a fresh buffer.
pub fn encode(artifacts: &CorpusArtifacts, fingerprint: u64) -> Result<Vec<u8>, SnapshotError> {
    let mut out = Vec::new();
    encode_into(artifacts, fingerprint, &mut out)?;
    Ok(out)
}

/// One parsed section-table row: the kind, the recorded CRC, and the
/// payload slice (not yet checksum-verified).
type RawSection<'a> = (SectionKind, u32, &'a [u8]);

/// Parses the header and section table, returning each section's slice
/// without checking payload checksums.
fn read_table(bytes: &[u8]) -> Result<(u16, u64, Vec<RawSection<'_>>), SnapshotError> {
    let mut r = Reader::new(bytes, "snapshot header");
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let fingerprint = r.u64()?;
    let count = r.u16()?;
    let mut sections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = r.u8()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let crc = r.u32()?;
        let kind = SectionKind::from_tag(tag)
            .ok_or_else(|| SnapshotError::malformed(format!("unknown section tag {tag}")))?;
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(SnapshotError::Truncated {
                what: format!("{kind} section payload"),
            });
        };
        sections.push((kind, crc, &bytes[offset as usize..end as usize]));
    }
    Ok((version, fingerprint, sections))
}

/// Reads back a snapshot's container metadata (version, fingerprint,
/// section sizes and checksum validity) without decoding any payload.
pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    let (format_version, fingerprint, sections) = read_table(bytes)?;
    let infos = sections
        .iter()
        .map(|&(kind, crc, payload)| SectionInfo {
            kind,
            offset: (payload.as_ptr() as usize - bytes.as_ptr() as usize) as u64,
            len: payload.len() as u64,
            crc,
            crc_ok: crc32(payload) == crc,
        })
        .collect();
    Ok(SnapshotInfo {
        format_version,
        fingerprint,
        total_len: bytes.len() as u64,
        sections: infos,
    })
}

/// Decodes a snapshot into ready-to-serve artifacts.
///
/// `expected_fingerprint` is the [`spec_fingerprint`] of the spec the caller
/// wants artifacts for; a snapshot built for any other spec is rejected with
/// [`SnapshotError::FingerprintMismatch`] — the caller falls back to a full
/// build rather than ever serving the wrong corpus.  Every section checksum
/// is verified before any payload is interpreted.
pub fn decode(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Arc<CorpusArtifacts>, SnapshotError> {
    let (_, fingerprint, sections) = read_table(bytes)?;
    if fingerprint != expected_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }
    let section = |kind: SectionKind| -> Result<&[u8], SnapshotError> {
        let &(_, crc, payload) = sections
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .ok_or(SnapshotError::SectionMissing { kind })?;
        if crc32(payload) != crc {
            return Err(SnapshotError::ChecksumMismatch { kind });
        }
        Ok(payload)
    };

    let papers = decode_papers(section(SectionKind::Papers)?)?;
    let references = decode_refs(section(SectionKind::Refs)?)?;
    if references.len() != papers.len() {
        return Err(SnapshotError::malformed(format!(
            "{} reference lists for {} papers",
            references.len(),
            papers.len()
        )));
    }
    let graph = decode_graph(section(SectionKind::Graph)?)?;
    let pagerank = decode_pagerank(section(SectionKind::PageRank)?)?;
    let inverted = decode_index(section(SectionKind::Index)?)?;
    let meta_json = std::str::from_utf8(section(SectionKind::Meta)?)
        .map_err(|_| SnapshotError::malformed("meta section is not UTF-8"))?;
    let meta: MetaSection = serde_json::from_str(meta_json)
        .map_err(|e| SnapshotError::malformed(format!("metadata does not parse: {e:?}")))?;

    if inverted.doc_count() != papers.len() {
        return Err(SnapshotError::malformed(format!(
            "inverted index covers {} documents for {} papers",
            inverted.doc_count(),
            papers.len()
        )));
    }
    let corpus = Arc::new(
        Corpus::from_parts(
            papers,
            references,
            graph,
            meta.topics,
            meta.venues,
            meta.survey_bank,
        )
        .map_err(SnapshotError::malformed)?,
    );
    let index = EngineIndex::with_inverted(&corpus, inverted);
    CorpusArtifacts::from_parts(corpus, index, pagerank)
        .map_err(|e| SnapshotError::malformed(e.to_string()))
}

/// Reads and decodes the snapshot at `path` for the given expected
/// fingerprint.  The one-call form the registry and CLI use.
pub fn try_load(
    path: &str,
    expected_fingerprint: u64,
) -> Result<Arc<CorpusArtifacts>, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io {
        what: format!("{path}: {e}"),
    })?;
    decode(&bytes, expected_fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> CorpusSpec {
        CorpusSpec::small(0x5EED)
    }

    fn demo_artifacts(spec: &CorpusSpec) -> Arc<CorpusArtifacts> {
        CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap()
    }

    fn assert_same_artifacts(a: &CorpusArtifacts, b: &CorpusArtifacts) {
        let (ca, cb) = (a.corpus(), b.corpus());
        assert_eq!(ca.papers(), cb.papers());
        assert_eq!(ca.graph().edge_count(), cb.graph().edge_count());
        for n in ca.graph().nodes() {
            assert_eq!(ca.graph().references(n), cb.graph().references(n));
            assert_eq!(ca.graph().cited_by(n), cb.graph().cited_by(n));
        }
        for i in 0..ca.len() {
            let id = PaperId::from_index(i);
            assert_eq!(ca.references_of(id), cb.references_of(id));
        }
        assert_eq!(a.pagerank(), b.pagerank());
        assert_eq!(
            a.index().inverted().doc_count(),
            b.index().inverted().doc_count()
        );
        assert_eq!(
            a.index().inverted().term_count(),
            b.index().inverted().term_count()
        );
        assert_eq!(
            ca.survey_bank()
                .iter()
                .map(|s| &s.query)
                .collect::<Vec<_>>(),
            cb.survey_bank()
                .iter()
                .map(|s| &s.query)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn round_trip_preserves_artifacts_and_bytes() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let artifacts = demo_artifacts(&spec);
        let bytes = encode(&artifacts, fingerprint).unwrap();
        let decoded = decode(&bytes, fingerprint).unwrap();
        assert_same_artifacts(&artifacts, &decoded);
        // Encoding is deterministic, so re-encoding the decoded artifacts
        // reproduces the exact bytes.
        let re_encoded = encode(&decoded, fingerprint).unwrap();
        assert_eq!(bytes, re_encoded);
    }

    #[test]
    fn decoded_artifacts_serve_identical_results() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let artifacts = demo_artifacts(&spec);
        let bytes = encode(&artifacts, fingerprint).unwrap();
        let decoded = decode(&bytes, fingerprint).unwrap();
        let survey = artifacts.corpus().survey_bank().iter().next().unwrap();
        let (query, year) = (survey.query.clone(), survey.year);
        let request = rpg_repager::system::PathRequest {
            max_year: Some(year),
            ..rpg_repager::system::PathRequest::new(&query, 25)
        };
        let a = crate::PathService::with_artifacts(artifacts)
            .generate_uncached(&request)
            .unwrap();
        let b = crate::PathService::with_artifacts(decoded)
            .generate_uncached(&request)
            .unwrap();
        assert!(a.same_result(&b));
        assert_eq!(a.reading_list, b.reading_list);
    }

    #[test]
    fn fingerprint_gates_decoding() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let artifacts = demo_artifacts(&spec);
        let bytes = encode(&artifacts, fingerprint).unwrap();
        let other = spec_fingerprint(&CorpusSpec::small(0x0DD));
        assert_ne!(fingerprint, other);
        assert_eq!(
            decode(&bytes, other).unwrap_err(),
            SnapshotError::FingerprintMismatch {
                expected: other,
                found: fingerprint,
            }
        );
    }

    #[test]
    fn spec_fingerprint_canonicalises_and_excludes_the_path() {
        let base = CorpusSpec::small(9);
        let spelled_small = CorpusSpec {
            scale: Some("small".to_string()),
            ..base.clone()
        };
        assert_eq!(spec_fingerprint(&base), spec_fingerprint(&spelled_small));
        let with_path = CorpusSpec {
            snapshot: Some("/tmp/x.rpgsnap".to_string()),
            ..base.clone()
        };
        assert_eq!(spec_fingerprint(&base), spec_fingerprint(&with_path));
        let full = CorpusSpec {
            scale: Some("full".to_string()),
            ..base.clone()
        };
        let aliased = CorpusSpec {
            scale: Some("default".to_string()),
            ..base.clone()
        };
        assert_eq!(spec_fingerprint(&full), spec_fingerprint(&aliased));
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&full));
        assert_ne!(
            spec_fingerprint(&base),
            spec_fingerprint(&CorpusSpec::small(10))
        );
        assert_ne!(
            spec_fingerprint(&base),
            spec_fingerprint(&CorpusSpec {
                papers_per_topic: Some(12),
                ..base.clone()
            })
        );
        assert_ne!(spec_fingerprint(&base), NO_SPEC_FINGERPRINT);
    }

    #[test]
    fn inspect_reports_sections_and_checksums() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let bytes = encode(&demo_artifacts(&spec), fingerprint).unwrap();
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.fingerprint, fingerprint);
        assert_eq!(info.total_len, bytes.len() as u64);
        assert_eq!(info.sections.len(), SectionKind::ALL.len());
        let mut expected_offset = (HEADER_LEN + TABLE_ENTRY_LEN * SectionKind::ALL.len()) as u64;
        for (section, kind) in info.sections.iter().zip(SectionKind::ALL) {
            assert_eq!(section.kind, kind);
            assert_eq!(section.offset, expected_offset);
            assert!(section.crc_ok, "{kind} checksum invalid");
            assert!(section.len > 0, "{kind} section empty");
            expected_offset += section.len;
        }
        assert_eq!(expected_offset, bytes.len() as u64);
    }

    #[test]
    fn header_corruption_yields_typed_errors() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let bytes = encode(&demo_artifacts(&spec), fingerprint).unwrap();

        assert_eq!(
            decode(&[], fingerprint).unwrap_err(),
            SnapshotError::Truncated {
                what: "snapshot header".to_string(),
            }
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode(&bad_magic, fingerprint).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut future = bytes.clone();
        future[8] = 0xFF; // format version low byte
        assert_eq!(
            decode(&future, fingerprint).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: u16::from_le_bytes([0xFF, bytes[9]]),
            }
        );
    }

    #[test]
    fn bit_flips_in_any_section_are_caught() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let bytes = encode(&demo_artifacts(&spec), fingerprint).unwrap();
        let info = inspect(&bytes).unwrap();
        for section in &info.sections {
            let mut corrupted = bytes.clone();
            let mid = (section.offset + section.len / 2) as usize;
            corrupted[mid] ^= 0x10;
            assert_eq!(
                decode(&corrupted, fingerprint).unwrap_err(),
                SnapshotError::ChecksumMismatch { kind: section.kind },
                "flip in {} not caught",
                section.kind
            );
        }
    }

    #[test]
    fn truncation_at_every_section_boundary_is_caught() {
        let spec = demo_spec();
        let fingerprint = spec_fingerprint(&spec);
        let bytes = encode(&demo_artifacts(&spec), fingerprint).unwrap();
        let info = inspect(&bytes).unwrap();
        for section in &info.sections {
            let truncated = &bytes[..section.offset as usize];
            let err = decode(truncated, fingerprint).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "truncation before {} yielded {err:?}",
                section.kind
            );
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let signed = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &signed {
            put_zigzag(&mut buf, v);
        }
        let mut r = Reader::new(&buf, "test");
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.zigzag().unwrap(), v);
        }
        assert!(r.is_done());
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A payload claiming u64::MAX elements must fail fast instead of
        // attempting the allocation.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf, "test");
        assert!(matches!(
            r.count().unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds artifacts and their fingerprint for a sampled spec: `papers`
    /// of 0 means "papers_per_topic omitted".
    fn sampled_artifacts(seed: u64, papers: usize) -> (Arc<CorpusArtifacts>, u64) {
        let spec = CorpusSpec {
            papers_per_topic: (papers > 0).then_some(papers),
            ..CorpusSpec::small(seed)
        };
        let artifacts = CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap();
        (artifacts, spec_fingerprint(&spec))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Round-trip identity over randomly generated artifacts: decoding
        /// an encoding yields artifacts that re-encode to identical bytes
        /// (encoding is deterministic, so byte identity implies structural
        /// identity for every persisted column).
        #[test]
        fn round_trip_identity(seed in 0u64..1 << 48, papers in 0usize..14) {
            let (artifacts, fingerprint) = sampled_artifacts(seed, papers);
            let bytes = encode(&artifacts, fingerprint).unwrap();
            let decoded = decode(&bytes, fingerprint).unwrap();
            prop_assert_eq!(encode(&decoded, fingerprint).unwrap(), bytes);
            prop_assert_eq!(decoded.corpus().len(), artifacts.corpus().len());
            prop_assert_eq!(decoded.pagerank(), artifacts.pagerank());
        }

        /// Corruption matrix: truncating at an arbitrary point, flipping a
        /// bit anywhere, rewriting the version, or decoding with the wrong
        /// fingerprint always yields a typed error — never a panic and
        /// never a silently decoded artifact.
        #[test]
        fn corruption_never_panics_or_decodes(
            seed in 0u64..1 << 32,
            cut in 0.0f64..1.0,
            flip_at in 0.0f64..1.0,
            flip_bit in 0u8..8,
        ) {
            let spec = CorpusSpec::small(seed);
            let fingerprint = spec_fingerprint(&spec);
            let artifacts = CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap();
            let bytes = encode(&artifacts, fingerprint).unwrap();

            let cut = (cut * bytes.len() as f64) as usize;
            prop_assert!(decode(&bytes[..cut.min(bytes.len() - 1)], fingerprint).is_err());

            let mut flipped = bytes.clone();
            let at = ((flip_at * bytes.len() as f64) as usize).min(bytes.len() - 1);
            flipped[at] ^= 1 << flip_bit;
            // A typed error is the expected outcome; if the flip lands in
            // bytes the CRC does not cover it must not change anything
            // observable, so re-encoding must reproduce the original bytes.
            if let Ok(decoded) = decode(&flipped, fingerprint) {
                prop_assert_eq!(encode(&decoded, fingerprint).unwrap(), bytes);
            }

            let mut wrong_version = bytes.clone();
            wrong_version[8] = wrong_version[8].wrapping_add(1);
            prop_assert!(matches!(
                decode(&wrong_version, fingerprint),
                Err(SnapshotError::UnsupportedVersion { .. })
            ));

            prop_assert!(matches!(
                decode(&bytes, fingerprint.wrapping_add(1)),
                Err(SnapshotError::FingerprintMismatch { .. })
            ));
        }
    }
}
