//! Integration tests for the `rpg-service` serving layer over the demo
//! corpus: concurrency, caching, batch/serial equivalence and stage timings.

use rpg_repager::system::{PathRequest, RepagerOutput};
use rpg_repager::RePaGer;
use rpg_repro::{demo_corpus, demo_service};
use std::time::Duration;

fn demo_requests(count: usize) -> Vec<(String, u16)> {
    demo_corpus()
        .survey_bank()
        .iter()
        .take(count)
        .map(|s| (s.query.clone(), s.year))
        .collect()
}

#[test]
fn shared_service_across_threads_matches_serial_runs() {
    let service = demo_service();
    let surveys = demo_requests(5);
    let serial: Vec<RepagerOutput> = surveys
        .iter()
        .map(|(query, year)| {
            service
                .generate_uncached(&PathRequest {
                    max_year: Some(*year),
                    ..PathRequest::new(query, 25)
                })
                .unwrap()
        })
        .collect();

    // N threads hammer the same service; every output must carry exactly the
    // result of the serial reference run.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let service = service.clone();
            let surveys = &surveys;
            let serial = &serial;
            scope.spawn(move || {
                // Stagger the per-thread order so threads collide on
                // different requests.
                for i in 0..surveys.len() {
                    let pick = (i + worker) % surveys.len();
                    let (query, year) = &surveys[pick];
                    let output = service
                        .generate(&PathRequest {
                            max_year: Some(*year),
                            ..PathRequest::new(query, 25)
                        })
                        .unwrap();
                    assert!(
                        output.same_result(&serial[pick]),
                        "thread {worker} diverged on query {query:?}"
                    );
                }
            });
        }
    });
}

#[test]
fn service_and_facade_agree_on_the_demo_corpus() {
    // The acceptance bar for the refactor: the owned serving layer and the
    // borrowing facade are the same model.
    let corpus = demo_corpus();
    let facade = RePaGer::build(&corpus).unwrap();
    let service = demo_service();
    for (query, year) in demo_requests(5) {
        let request = PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 30)
        };
        let via_facade = facade.generate(&request).unwrap();
        let via_service = service.generate(&request).unwrap();
        assert_eq!(via_facade.reading_list, via_service.reading_list);
        assert_eq!(via_facade.path.order, via_service.path.order);
    }
}

#[test]
fn batch_over_survey_queries_matches_the_serial_loop() {
    let service = demo_service();
    let surveys = demo_requests(8);
    let requests: Vec<PathRequest<'_>> = surveys
        .iter()
        .map(|(query, year)| PathRequest {
            max_year: Some(*year),
            ..PathRequest::new(query, 30)
        })
        .collect();
    let serial: Vec<Vec<_>> = requests
        .iter()
        .map(|r| service.generate_uncached(r).unwrap().reading_list)
        .collect();
    let batched = service.generate_batch(&requests);
    assert_eq!(batched.len(), serial.len());
    for (batch_result, serial_list) in batched.into_iter().zip(&serial) {
        assert_eq!(&batch_result.unwrap().reading_list, serial_list);
    }
}

#[test]
fn repeated_identical_request_hits_the_cache_with_identical_list() {
    let service = demo_service();
    let (query, year) = demo_requests(1).remove(0);
    let request = PathRequest {
        max_year: Some(year),
        ..PathRequest::new(&query, 30)
    };
    let first = service.generate(&request).unwrap();
    let before = service.cache_stats();
    let second = service.generate(&request).unwrap();
    let after = service.cache_stats();
    assert_eq!(
        after.hits,
        before.hits + 1,
        "second request must be a cache hit"
    );
    assert_eq!(first.reading_list, second.reading_list);
    assert!(first.same_result(&second));
}

#[test]
fn outputs_expose_all_five_stage_timings() {
    let service = demo_service();
    let (query, year) = demo_requests(1).remove(0);
    let output = service
        .generate(&PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 30)
        })
        .unwrap();
    let timings = output.timings;
    let stages = timings.stages();
    assert_eq!(stages.len(), 5);
    for (name, duration) in stages {
        assert!(
            duration > Duration::ZERO,
            "stage {name} has no recorded time"
        );
    }
    assert!(timings.stage_sum() <= timings.total);
    // Stage timings sum to ≈ the total: only bounded pipeline bookkeeping
    // falls outside the five stages. An absolute gap keeps this stable on
    // loaded CI runners, where a scheduler stall between stages would break
    // a strict ratio.
    let gap = timings.total - timings.stage_sum();
    assert!(
        gap < Duration::from_millis(250),
        "non-stage overhead {gap:?} is too large for {:?} total",
        timings.total
    );
}
