//! The shared server harness for the loopback integration suites: spawn an
//! [`rpg_server::Server`] on an ephemeral port, wait until it provably
//! answers end-to-end, and guard shutdown on drop — so no test re-rolls the
//! registry/config/ready-wait boilerplate, and every test's counters start
//! from a clean baseline.
//!
//! The keep-alive connection mode is taken from the `RPG_TEST_KEEP_ALIVE`
//! environment variable (`off` disables it; anything else, including
//! absence, enables it), which is how CI runs the whole suite in a
//! keep-alive on/off matrix. Tests that assert keep-alive (or close-mode)
//! semantics specifically must pin `config.keep_alive` themselves instead
//! of inheriting the ambient mode.
//!
//! Likewise the readiness backend is taken from `RPG_IO_BACKEND`
//! (`auto`, `poll`, or `epoll`, exactly the `--io-backend` CLI values;
//! absence means `auto`), which is how CI runs the suite once per
//! backend. A value that does not parse fails loudly rather than falling
//! back — a typo'd matrix entry must not silently retest the default.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use rpg_repro::demo_corpus;
use rpg_server::client::{self, ClientResponse};
use rpg_server::{IoBackendChoice, Server, ServerConfig, StatsSnapshot};
use rpg_service::{CorpusRegistry, Manifest};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether this run serves keep-alive connections (see the module docs).
pub fn keep_alive_mode() -> bool {
    !std::env::var("RPG_TEST_KEEP_ALIVE").is_ok_and(|v| v.eq_ignore_ascii_case("off"))
}

/// The readiness backend this run drives the event loops with (see the
/// module docs). Panics on an unparseable `RPG_IO_BACKEND`.
pub fn io_backend_mode() -> IoBackendChoice {
    match std::env::var("RPG_IO_BACKEND") {
        Ok(value) => IoBackendChoice::parse(&value)
            .unwrap_or_else(|e| panic!("RPG_IO_BACKEND={value:?}: {e}")),
        Err(_) => IoBackendChoice::Auto,
    }
}

/// The suite-wide base configuration: an ephemeral port, the ambient
/// keep-alive mode, and the ambient readiness backend. Everything else
/// stays at the server's defaults.
pub fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        keep_alive: keep_alive_mode(),
        io_backend: io_backend_mode(),
        ..ServerConfig::default()
    }
}

/// A registry serving the demo corpus as the `default` tenant.
pub fn demo_registry() -> Arc<CorpusRegistry> {
    let registry = Arc::new(CorpusRegistry::new());
    registry.register("default", demo_corpus()).unwrap();
    registry
}

/// Like [`demo_registry`] with result caching disabled, so every request
/// pays a full pipeline run (what the overload tests need).
pub fn demo_registry_without_cache() -> Arc<CorpusRegistry> {
    let registry = Arc::new(CorpusRegistry::with_cache_capacity(0));
    registry.register("default", demo_corpus()).unwrap();
    registry
}

/// The first `count` benchmark queries of the demo corpus, with their
/// publication years.
pub fn demo_queries(count: usize) -> Vec<(String, u16)> {
    demo_corpus()
        .survey_bank()
        .iter()
        .take(count)
        .map(|s| (s.query.clone(), s.year))
        .collect()
}

/// The JSON body of a `/v1/generate` request.
pub fn generate_body(query: &str, year: u16, top_k: usize) -> String {
    format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": {top_k}}}"#)
}

/// A running server plus the counter baseline its readiness probe left
/// behind. Dropping it shuts the server down and joins every thread — the
/// guard half of the harness.
pub struct TestServer {
    server: Server,
    baseline: StatsSnapshot,
}

impl TestServer {
    /// Counters since the server became ready, with the readiness probe's
    /// own exchange subtracted out — tests assert absolute counts as if
    /// the probe never happened.
    pub fn stats(&self) -> StatsSnapshot {
        let raw = self.server.stats();
        StatsSnapshot {
            accepted: raw.accepted.saturating_sub(self.baseline.accepted),
            open_connections: raw.open_connections,
            rejected: raw.rejected.saturating_sub(self.baseline.rejected),
            throttled: raw.throttled.saturating_sub(self.baseline.throttled),
            handled: raw.handled.saturating_sub(self.baseline.handled),
            ok: raw.ok.saturating_sub(self.baseline.ok),
            client_errors: raw
                .client_errors
                .saturating_sub(self.baseline.client_errors),
            server_errors: raw
                .server_errors
                .saturating_sub(self.baseline.server_errors),
            pipeline: raw.pipeline,
        }
    }
}

impl std::ops::Deref for TestServer {
    type Target = Server;
    fn deref(&self) -> &Server {
        &self.server
    }
}

impl std::ops::DerefMut for TestServer {
    fn deref_mut(&mut self) -> &mut Server {
        &mut self.server
    }
}

/// Spawns a server over `registry` with [`base_config`] tweaked by
/// `configure`, and blocks until it provably serves: a `/v1/healthz` probe
/// must answer 200 end-to-end and the probe connection must be fully
/// closed again (so open-connection gauges start at zero).
pub fn spawn_with(
    registry: Arc<CorpusRegistry>,
    configure: impl FnOnce(&mut ServerConfig),
) -> TestServer {
    let mut config = base_config();
    configure(&mut config);
    let server = Server::spawn(registry, config).expect("server binds an ephemeral port");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client::get(server.addr(), "/v1/healthz") {
            Ok(response) if response.status == 200 => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
            Ok(response) => panic!(
                "server never became ready: last healthz {}",
                response.status
            ),
            Err(e) => panic!("server never became ready: {e}"),
        }
    }
    // The probe was a `Connection: close` exchange; wait for the server to
    // finish tearing its connection down so tests observing the open gauge
    // (or thread/connection counts) see a quiescent server.
    while server.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "readiness probe connection never closed"
        );
        std::thread::yield_now();
    }
    let baseline = server.stats();
    TestServer { server, baseline }
}

/// The common spawn shape: `workers` compute threads and a global request
/// queue bound, everything else default.
pub fn spawn(registry: Arc<CorpusRegistry>, workers: usize, queue: usize) -> TestServer {
    spawn_with(registry, |config| {
        config.workers = workers;
        config.queue_capacity = queue;
    })
}

/// The admin bearer key of [`demo_manifest`].
pub const ADMIN_KEY: &str = "root-key";
/// Tenant `alpha`'s bearer key in [`demo_manifest`].
pub const ALPHA_KEY: &str = "alpha-key";
/// Tenant `beta`'s bearer key in [`demo_manifest`].
pub const BETA_KEY: &str = "beta-key";

/// The control-plane test fixture: two small-corpus tenants with distinct
/// keys (weights 1 and 2) plus an admin key.
pub fn demo_manifest_json() -> String {
    r#"{
        "admin_keys": ["root-key"],
        "tenants": {
            "alpha": {
                "corpus": {"seed": 161, "scale": "small"},
                "weight": 1,
                "api_keys": ["alpha-key"]
            },
            "beta": {
                "corpus": {"seed": 178, "scale": "small"},
                "weight": 2,
                "api_keys": ["beta-key"]
            }
        }
    }"#
    .to_string()
}

/// The parsed [`demo_manifest_json`].
pub fn demo_manifest() -> Manifest {
    Manifest::from_json(&demo_manifest_json()).expect("fixture manifest is valid")
}

/// Spawns an authenticated (`--auth on` equivalent) server over the
/// [`demo_manifest`] tenants, with `configure` applied on top.
pub fn spawn_manifest_server(configure: impl FnOnce(&mut ServerConfig)) -> TestServer {
    let manifest = demo_manifest();
    let registry = Arc::new(CorpusRegistry::new());
    registry
        .apply_manifest(&manifest)
        .expect("fixture tenants build");
    // `configure` runs first so `with_manifest` derives per-tenant
    // in-flight caps from the worker count the test actually asked for.
    spawn_with(registry, |config| {
        config.auth_enabled = true;
        configure(config);
        *config = config.clone().with_manifest(&manifest);
    })
}

/// One request with a bearer key on a fresh connection.
pub fn request_with_key(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    key: Option<&str>,
) -> std::io::Result<ClientResponse> {
    match key {
        Some(key) => {
            let (name, value) = client::bearer(key);
            client::request_with(addr, method, path, body, &[(&name, &value)])
        }
        None => client::request_with(addr, method, path, body, &[]),
    }
}

/// `GET` with a bearer key.
pub fn get_with_key(addr: SocketAddr, path: &str, key: &str) -> std::io::Result<ClientResponse> {
    request_with_key(addr, "GET", path, None, Some(key))
}

/// `POST` JSON with a bearer key.
pub fn post_json_with_key(
    addr: SocketAddr,
    path: &str,
    body: &str,
    key: &str,
) -> std::io::Result<ClientResponse> {
    request_with_key(addr, "POST", path, Some(body), Some(key))
}

/// The first benchmark query of the corpus a fixture tenant serves,
/// straight from the live registry.
pub fn tenant_query(server: &Server, tenant: &str) -> (String, u16) {
    let artifacts = server
        .registry()
        .artifacts(tenant)
        .unwrap_or_else(|| panic!("tenant {tenant} is registered"));
    let survey = artifacts
        .corpus()
        .survey_bank()
        .iter()
        .next()
        .expect("fixture corpus has surveys");
    (survey.query.clone(), survey.year)
}
