//! Integration tests for the features that go beyond the paper's evaluation:
//! the semantic-augmented NEWST extension, the rank-aware metrics, and the
//! JSON report export.

use rpg_corpus::LabelLevel;
use rpg_eval::experiments::{table3_ablation, ExperimentContext};
use rpg_eval::metrics::{average_precision, f1_score, ndcg};
use rpg_eval::report::to_json;
use rpg_repager::semantic::{generate_with_semantics, SemanticSimilarity};
use rpg_repager::system::{PathRequest, RePaGer};
use rpg_repager::{RepagerConfig, Variant};
use rpg_repro::demo_corpus;

#[test]
fn semantic_extension_is_competitive_with_plain_newst() {
    let corpus = demo_corpus();
    let system = RePaGer::build(&corpus).unwrap();
    let semantic = SemanticSimilarity::build(&corpus);

    let mut plain = Vec::new();
    let mut blended = Vec::new();
    for survey in corpus.survey_bank().iter().take(6) {
        let exclude = [survey.paper];
        let request = PathRequest {
            query: &survey.query,
            top_k: 30,
            max_year: Some(survey.year),
            exclude: &exclude,
            config: RepagerConfig::default(),
            variant: Variant::Newst,
        };
        let a = system.generate(&request).unwrap();
        let b = generate_with_semantics(&system, &request, &semantic, 2.0).unwrap();
        if a.reading_list.is_empty() || b.reading_list.is_empty() {
            continue;
        }
        let truth = survey.label(LabelLevel::AtLeastOne);
        plain.push(f1_score(&a.reading_list, &truth));
        blended.push(f1_score(&b.reading_list, &truth));
        assert!(b.path.is_consistent());
    }
    assert!(!plain.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // The extension must not collapse the model: it should stay within a
    // reasonable band of plain NEWST (on the synthetic corpus it is usually a
    // small improvement).
    assert!(
        mean(&blended) >= mean(&plain) * 0.7,
        "semantic blending collapsed F1: {:.3} vs {:.3}",
        mean(&blended),
        mean(&plain)
    );
}

#[test]
fn rank_aware_metrics_agree_with_overlap_metrics_on_extremes() {
    let corpus = demo_corpus();
    let survey = corpus.survey_bank().iter().next().unwrap();
    let truth = survey.label(LabelLevel::AtLeastOne);
    // A list that is exactly the ground truth maximises every metric.
    assert!((average_precision(&truth, &truth) - 1.0).abs() < 1e-9);
    assert!((ndcg(&truth, &truth) - 1.0).abs() < 1e-9);
    // A disjoint list zeroes every metric.
    let disjoint: Vec<_> = corpus
        .papers()
        .iter()
        .map(|p| p.id)
        .filter(|p| !truth.contains(p))
        .take(truth.len())
        .collect();
    assert_eq!(average_precision(&disjoint, &truth), 0.0);
    assert_eq!(ndcg(&disjoint, &truth), 0.0);
    assert_eq!(f1_score(&disjoint, &truth), 0.0);
}

#[test]
fn experiment_reports_serialize_to_json() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 15, 4, 2);
    let report = table3_ablation::run(&ctx, 20, LabelLevel::AtLeastOne);
    let json = to_json(&report).unwrap();
    assert!(json.contains("NEWST"));
    assert!(json.contains("precision"));
    // The JSON is valid and round-trips.
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(value.get("rows").is_some());
}
