//! Loopback coverage of the observability layer: the `x-rpg-trace-id`
//! contract (echo on every response class, minting, 400 on malformed IDs),
//! the slow-request exemplar ring behind `GET /v1/debug/requests` with its
//! full span tree, and the `/metrics` Prometheus exposition — linted by the
//! in-repo checker and cross-checked against `/v1/stats`, which reads the
//! same registry atomics.

mod common;

use common::{
    demo_queries, demo_registry, demo_registry_without_cache, generate_body, get_with_key,
    post_json_with_key, request_with_key, spawn, spawn_manifest_server, spawn_with, tenant_query,
    ADMIN_KEY, ALPHA_KEY,
};
use rpg_server::client::{self, ClientResponse};
use serde_json::Value;

/// A caller-supplied trace ID (32 lowercase hex chars, not all zero).
const TRACE_ID: &str = "4bf92f3577b34da6a3ce929d0e0e4736";

fn parse_json(response: &ClientResponse) -> Value {
    serde_json::from_str(&response.body)
        .unwrap_or_else(|e| panic!("body is JSON ({e:?}): {}", response.body))
}

/// Extracts the value of one exposition sample line, e.g.
/// `sample_value(text, "rpg_responses_total{class=\"2xx\"}")`.
fn sample_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.trim().parse().ok()
    })
}

#[test]
fn responses_echo_the_supplied_trace_id() {
    let server = spawn(demo_registry(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    let response = client::request_with(
        server.addr(),
        "POST",
        "/v1/generate",
        Some(&generate_body(&query, year, 10)),
        &[("x-rpg-trace-id", TRACE_ID)],
    )
    .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-rpg-trace-id"), Some(TRACE_ID));
}

#[test]
fn responses_without_the_header_get_a_minted_trace_id() {
    let server = spawn(demo_registry(), 2, 16);
    let response = client::get(server.addr(), "/v1/healthz").unwrap();
    assert_eq!(response.status, 200);
    let id = response
        .header("x-rpg-trace-id")
        .expect("every response carries a trace ID");
    assert_eq!(id.len(), 32, "minted ID is 32 hex chars: {id:?}");
    assert!(id
        .chars()
        .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    assert!(id.chars().any(|c| c != '0'), "minted ID is never all-zero");
}

#[test]
fn error_responses_echo_the_trace_id_too() {
    let server = spawn(demo_registry(), 2, 16);
    // 404: unknown route.
    let response = client::request_with(
        server.addr(),
        "GET",
        "/v1/no-such-endpoint",
        None,
        &[("x-rpg-trace-id", TRACE_ID)],
    )
    .unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(response.header("x-rpg-trace-id"), Some(TRACE_ID));
    // 400: unparseable body.
    let response = client::request_with(
        server.addr(),
        "POST",
        "/v1/generate",
        Some("{not json"),
        &[("x-rpg-trace-id", TRACE_ID)],
    )
    .unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header("x-rpg-trace-id"), Some(TRACE_ID));
}

#[test]
fn malformed_trace_ids_get_a_400_naming_the_header() {
    let server = spawn(demo_registry(), 2, 16);
    let long = "a".repeat(33);
    let zero = "0".repeat(32);
    for bad in ["zz", "1234", long.as_str(), zero.as_str()] {
        let response = client::request_with(
            server.addr(),
            "GET",
            "/v1/healthz",
            None,
            &[("x-rpg-trace-id", bad)],
        )
        .unwrap();
        assert_eq!(response.status, 400, "trace id {bad:?}");
        assert!(
            response.body.contains("x-rpg-trace-id"),
            "400 body names the offending header: {}",
            response.body
        );
        // The reject itself still carries a (minted) trace ID so the
        // failure is correlatable.
        let minted = response.header("x-rpg-trace-id").expect("minted trace ID");
        assert_eq!(minted.len(), 32);
        assert_ne!(minted, bad);
    }
}

#[test]
fn rejector_503s_echo_the_supplied_trace_id() {
    // One allowed connection; the second one lands on the rejector thread,
    // which sniffs the request head for the trace header before answering.
    let server = spawn_with(demo_registry(), |config| {
        config.max_connections = 1;
        // The occupant must stay open after its exchange regardless of the
        // ambient suite-wide connection mode.
        config.keep_alive = true;
    });
    let mut occupant = client::Conn::connect(server.addr()).unwrap();
    assert_eq!(occupant.get("/v1/healthz").unwrap().status, 200);
    let rejected = client::request_with(
        server.addr(),
        "GET",
        "/v1/healthz",
        None,
        &[("x-rpg-trace-id", TRACE_ID)],
    )
    .unwrap();
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("x-rpg-trace-id"), Some(TRACE_ID));
    drop(occupant);
}

#[test]
fn metrics_exposition_is_lint_clean_and_agrees_with_stats() {
    let server = spawn(demo_registry(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    for _ in 0..3 {
        let response = client::post_json(
            server.addr(),
            "/v1/generate",
            &generate_body(&query, year, 10),
        )
        .unwrap();
        assert_eq!(response.status, 200);
    }
    assert_eq!(client::get(server.addr(), "/v1/nope").unwrap().status, 404);

    let stats = parse_json(&client::get(server.addr(), "/v1/stats").unwrap());
    let scrape = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    assert!(
        scrape
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "exposition content type: {:?}",
        scrape.header("content-type")
    );
    let problems = rpg_obs::promlint::lint(&scrape.body);
    assert!(problems.is_empty(), "exposition lint: {problems:?}");

    // `/metrics` and `/v1/stats` read the very same registry atomics; the
    // only drift between the two reads is the `/v1/stats` exchange itself
    // (one more 2xx by scrape time).
    let responses = stats.get("responses").expect("responses section");
    let stats_ok = responses.get("ok").and_then(Value::as_f64).unwrap();
    let stats_4xx = responses
        .get("client_error")
        .and_then(Value::as_f64)
        .unwrap();
    let metric_2xx = sample_value(&scrape.body, "rpg_responses_total{class=\"2xx\"}")
        .expect("2xx series rendered");
    let metric_4xx = sample_value(&scrape.body, "rpg_responses_total{class=\"4xx\"}")
        .expect("4xx series rendered");
    assert_eq!(metric_2xx, stats_ok + 1.0);
    assert_eq!(metric_4xx, stats_4xx);
    // The per-tenant latency histogram covers the generate requests.
    let latency_count = sample_value(
        &scrape.body,
        "rpg_request_latency_seconds_count{tenant=\"default\"}",
    )
    .expect("latency histogram rendered");
    assert_eq!(latency_count, 3.0);
}

#[test]
fn debug_requests_resolve_a_trace_with_its_full_span_tree() {
    // Default config: slow threshold 0 ms retains an exemplar for every
    // request. Cache is disabled so the pipeline (and its stage spans)
    // actually runs.
    let server = spawn(demo_registry_without_cache(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    let response = client::request_with(
        server.addr(),
        "POST",
        "/v1/generate",
        Some(&generate_body(&query, year, 10)),
        &[("x-rpg-trace-id", TRACE_ID)],
    )
    .unwrap();
    assert_eq!(response.status, 200);

    let debug = client::get(server.addr(), "/v1/debug/requests").unwrap();
    assert_eq!(debug.status, 200);
    let body = parse_json(&debug);
    let requests = body
        .get("requests")
        .and_then(Value::as_array)
        .expect("requests array");
    let record = requests
        .iter()
        .find(|r| r.get("trace_id").and_then(Value::as_str) == Some(TRACE_ID))
        .unwrap_or_else(|| panic!("trace {TRACE_ID} resolvable in {}", debug.body));
    assert_eq!(record.get("status").and_then(Value::as_f64), Some(200.0));
    assert_eq!(
        record.get("tenant").and_then(Value::as_str),
        Some("default")
    );
    assert!(record.get("latency_ms").and_then(Value::as_f64).unwrap() >= 0.0);

    let spans = record
        .get("spans")
        .and_then(Value::as_array)
        .expect("span tree");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    for expected in [
        "queue_wait",
        "compute",
        "stage:seed",
        "stage:subgraph",
        "stage:realloc",
        "stage:steiner",
        "stage:render",
        "response_write",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected:?} missing from {names:?}"
        );
    }
    // The stage spans are parented under `compute`.
    let compute_index = spans
        .iter()
        .position(|s| s.get("name").and_then(Value::as_str) == Some("compute"))
        .unwrap();
    let seed = spans
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("stage:seed"))
        .unwrap();
    assert_eq!(
        seed.get("parent").and_then(Value::as_f64),
        Some(compute_index as f64)
    );
}

#[test]
fn debug_requests_are_admin_gated_but_metrics_are_not() {
    let server = spawn_manifest_server(|_| {});
    // /metrics stays an open scrape target even with auth on.
    assert_eq!(client::get(server.addr(), "/metrics").unwrap().status, 200);
    // The exemplar ring (queries, latencies per tenant) is admin-only.
    let anonymous = client::get(server.addr(), "/v1/debug/requests").unwrap();
    assert_eq!(anonymous.status, 401);
    let tenant = get_with_key(server.addr(), "/v1/debug/requests", ALPHA_KEY).unwrap();
    assert_eq!(tenant.status, 403);
    let admin = get_with_key(server.addr(), "/v1/debug/requests", ADMIN_KEY).unwrap();
    assert_eq!(admin.status, 200);
    assert!(parse_json(&admin)
        .get("requests")
        .and_then(Value::as_array)
        .is_some());
}

#[test]
fn tenant_trace_threshold_is_patchable_at_runtime() {
    let server = spawn_manifest_server(|_| {});
    // A high threshold suppresses exemplars for alpha...
    let response = request_with_key(
        server.addr(),
        "PATCH",
        "/v1/admin/tenants/alpha",
        Some(r#"{"trace_slow_ms": 60000}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(
        parse_json(&response)
            .get("trace_slow_ms")
            .and_then(Value::as_f64),
        Some(60000.0)
    );

    let (query, year) = tenant_query(&server, "alpha");
    let generate = post_json_with_key(
        server.addr(),
        "/v1/generate",
        &generate_body(&query, year, 10),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(generate.status, 200);
    let trace_id = generate.header("x-rpg-trace-id").unwrap().to_string();
    let debug = get_with_key(server.addr(), "/v1/debug/requests", ADMIN_KEY).unwrap();
    assert!(
        !debug.body.contains(&trace_id),
        "sub-threshold request retained an exemplar: {}",
        debug.body
    );

    // ...and patching it back to 0 retains every request again.
    let response = request_with_key(
        server.addr(),
        "PATCH",
        "/v1/admin/tenants/alpha",
        Some(r#"{"trace_slow_ms": 0}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let generate = post_json_with_key(
        server.addr(),
        "/v1/generate",
        &generate_body(&query, year, 10),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(generate.status, 200);
    let trace_id = generate.header("x-rpg-trace-id").unwrap().to_string();
    let debug = get_with_key(server.addr(), "/v1/debug/requests", ADMIN_KEY).unwrap();
    assert!(
        debug.body.contains(&trace_id),
        "zero-threshold request missing from the ring: {}",
        debug.body
    );
}
