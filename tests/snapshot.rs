//! Loopback integration tests for versioned corpus snapshots: the
//! admin-gated `GET /v1/corpora/:name/snapshot` export (binary body,
//! decodable with the tenant's spec fingerprint), a server booted from a
//! manifest whose tenant carries a `snapshot` path serving byte-identical
//! `/v1/generate` responses to a spec-built server, and the
//! fingerprint-mismatch fallback rebuilding from the spec rather than
//! serving stale data.
//!
//! Server spawning, readiness, and shutdown ride the shared harness in
//! `tests/common`; the ambient keep-alive mode comes from
//! `RPG_TEST_KEEP_ALIVE` and the readiness backend from `RPG_IO_BACKEND`
//! (CI runs the matrix).

mod common;

use common::{
    get_with_key, request_with_key, spawn_manifest_server, TestServer, ADMIN_KEY, ALPHA_KEY,
};
use rpg_repager::artifacts::CorpusArtifacts;
use rpg_repager::system::PathRequest;
use rpg_server::{api, client};
use rpg_service::{snapshot, CorpusRegistry, CorpusSpec, Manifest, PathService};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A `GET` with a bearer key that returns the body as raw bytes — the
/// shared [`client`] insists on UTF-8 bodies, which a binary snapshot is
/// not.
fn get_raw(addr: SocketAddr, path: &str, key: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\
                 authorization: Bearer {key}\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    (status, headers, raw[head_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// The canonical result JSON this service produces for `query` — the same
/// encoder the HTTP layer uses, so comparisons are byte-for-byte.
fn result_json(service: &PathService, query: &str, year: u16) -> String {
    let output = service
        .generate(&PathRequest {
            max_year: Some(year),
            ..PathRequest::new(query, 20)
        })
        .unwrap();
    serde_json::to_string(&api::output_result_value(&output)).unwrap()
}

/// Extracts and re-renders the `result` subtree of a 200 response body.
fn result_bytes(body: &str) -> String {
    let value: Value = serde_json::from_str(body).expect("response body parses");
    serde_json::to_string(value.get("result").expect("response has a result"))
        .expect("result re-serialises")
}

/// The manifest used by the snapshot-boot tests: one tenant whose corpus
/// spec carries `snapshot_path`.
fn alpha_manifest_json(snapshot_path: &str) -> String {
    format!(
        r#"{{
            "admin_keys": ["root-key"],
            "tenants": {{
                "alpha": {{
                    "corpus": {{"seed": 161, "scale": "small", "snapshot": {snapshot_path:?}}},
                    "api_keys": ["alpha-key"]
                }}
            }}
        }}"#
    )
}

/// Spawns an authenticated server over `manifest_json` (the custom-manifest
/// sibling of `common::spawn_manifest_server`).
fn spawn_from_json(manifest_json: &str) -> TestServer {
    let manifest = Manifest::from_json(manifest_json).expect("manifest parses");
    let registry = Arc::new(CorpusRegistry::new());
    registry
        .apply_manifest(&manifest)
        .expect("manifest tenants build");
    common::spawn_with(registry, |config| {
        config.auth_enabled = true;
        config.workers = 2;
        config.queue_capacity = 16;
        *config = config.clone().with_manifest(&manifest);
    })
}

/// A scratch path under the system temp dir, removed on drop.
struct TempFile(std::path::PathBuf);

impl TempFile {
    fn new(name: &str) -> TempFile {
        TempFile(std::env::temp_dir().join(format!("{name}-{}", std::process::id())))
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn snapshot_export_is_admin_gated_and_decodes_to_the_live_artifacts() {
    let server = spawn_manifest_server(|config| {
        config.workers = 2;
    });
    let addr = server.addr();

    // Gating: anonymous is 401, a tenant key is 403 (even for its own
    // corpus — the export is an operator surface), wrong method is 405.
    let anonymous = client::get(addr, "/v1/corpora/alpha/snapshot").unwrap();
    assert_eq!(anonymous.status, 401, "{}", anonymous.body);
    let tenant = get_with_key(addr, "/v1/corpora/alpha/snapshot", ALPHA_KEY).unwrap();
    assert_eq!(tenant.status, 403, "{}", tenant.body);
    let wrong_method = request_with_key(
        addr,
        "POST",
        "/v1/corpora/alpha/snapshot",
        Some("{}"),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(wrong_method.status, 405, "{}", wrong_method.body);
    assert_eq!(wrong_method.header("allow"), Some("GET"));
    let missing = get_with_key(addr, "/v1/corpora/ghost/snapshot", ADMIN_KEY).unwrap();
    assert_eq!(missing.status, 404, "{}", missing.body);

    // An admin export is a binary attachment...
    let (status, headers, body) = get_raw(addr, "/v1/corpora/alpha/snapshot", ADMIN_KEY);
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("application/octet-stream"),
        "binary body must not claim to be JSON"
    );
    assert_eq!(
        header(&headers, "content-disposition"),
        Some(r#"attachment; filename="alpha.rpgsnap""#)
    );

    // ...that inspects clean and decodes under the tenant's own spec
    // fingerprint into artifacts serving identical results to the live
    // registry's.
    let spec = server.registry().spec("alpha").expect("alpha has a spec");
    let fingerprint = snapshot::spec_fingerprint(&spec);
    let info = snapshot::inspect(&body).expect("export inspects");
    assert_eq!(info.fingerprint, fingerprint);
    assert!(info.sections.iter().all(|s| s.crc_ok), "{info:?}");
    let decoded = snapshot::decode(&body, fingerprint).expect("export decodes");
    let from_snapshot = PathService::with_artifacts(decoded);
    let live = PathService::with_artifacts(server.registry().artifacts("alpha").unwrap());
    let (query, year) = common::tenant_query(&server, "alpha");
    assert_eq!(
        result_json(&from_snapshot, &query, year),
        result_json(&live, &query, year),
        "decoded artifacts diverged from the live tenant"
    );
}

#[test]
fn a_snapshot_booted_server_serves_byte_identical_responses() {
    // Build the reference tenant from its spec alone, snapshot it, then
    // boot a second server whose manifest points at the snapshot file. The
    // two servers must be indistinguishable on the wire.
    let file = TempFile::new("rpg-snapshot-boot.rpgsnap");
    let spec_manifest = Manifest::from_json(&alpha_manifest_json(file.path())).unwrap();
    let spec = spec_manifest
        .tenant("alpha")
        .unwrap()
        .corpus_spec()
        .unwrap()
        .clone();
    // `build_corpus` generates from seed/scale alone (the snapshot path is
    // only consulted at registry load time), and the fingerprint covers
    // the generation parameters, not the path — so this reference build is
    // exactly what the server would rebuild.
    let reference = CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap();
    let bytes = snapshot::encode(&reference, snapshot::spec_fingerprint(&spec)).unwrap();
    std::fs::write(&file.0, &bytes).unwrap();

    let server = spawn_from_json(&alpha_manifest_json(file.path()));
    let direct = PathService::with_artifacts(reference);
    let (query, year) = common::tenant_query(&server, "alpha");
    let response = common::post_json_with_key(
        server.addr(),
        "/v1/generate",
        &common::generate_body(&query, year, 20),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(
        result_bytes(&response.body),
        result_json(&direct, &query, year),
        "snapshot boot diverged from the spec build"
    );
}

#[test]
fn a_mismatched_snapshot_falls_back_to_an_identical_spec_build() {
    // The staleness gate end to end: alpha's snapshot path holds a valid
    // container built from a *different* spec (seed 999), so its embedded
    // fingerprint cannot match. The server must rebuild from the spec —
    // one warning, no stale data — and serve exactly what a snapshot-less
    // boot serves.
    let file = TempFile::new("rpg-snapshot-stale.rpgsnap");
    let stale_spec = CorpusSpec::small(999);
    let stale = CorpusArtifacts::build(stale_spec.build_corpus().unwrap()).unwrap();
    let bytes = snapshot::encode(&stale, snapshot::spec_fingerprint(&stale_spec)).unwrap();
    std::fs::write(&file.0, &bytes).unwrap();

    let server = spawn_from_json(&alpha_manifest_json(file.path()));
    let spec = Manifest::from_json(&alpha_manifest_json(file.path()))
        .unwrap()
        .tenant("alpha")
        .unwrap()
        .corpus_spec()
        .unwrap()
        .clone();
    // The mismatch is structural, not incidental: decoding the file under
    // alpha's fingerprint is refused.
    assert!(matches!(
        snapshot::decode(&bytes, snapshot::spec_fingerprint(&spec)),
        Err(snapshot::SnapshotError::FingerprintMismatch { .. })
    ));

    let reference =
        PathService::with_artifacts(CorpusArtifacts::build(spec.build_corpus().unwrap()).unwrap());
    let (query, year) = common::tenant_query(&server, "alpha");
    let response = common::post_json_with_key(
        server.addr(),
        "/v1/generate",
        &common::generate_body(&query, year, 20),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(
        result_bytes(&response.body),
        result_json(&reference, &query, year),
        "fallback must serve the spec build, not the stale snapshot"
    );
}
