//! Connection-scale stress tests for the event-driven connection layer:
//! hundreds of mostly-idle keep-alive connections must ride on a tiny fixed
//! pool of event-loop threads, slowloris-style tricklers must be cut off by
//! the per-request read deadline with a clean close, and `/v1/stats` must
//! report the open-connection gauge truthfully.
//!
//! These tests pin `keep_alive = true` regardless of the ambient
//! `RPG_TEST_KEEP_ALIVE` mode — holding connections open is the point.

mod common;

use rpg_server::client;
use rpg_server::IoBackendChoice;
use rpg_service::CorpusRegistry;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Threads of this test process whose name starts with `prefix`, read from
/// `/proc` — hard evidence that connections stop costing threads.
fn threads_named(prefix: &str) -> usize {
    let mut count = 0;
    for entry in std::fs::read_dir("/proc/self/task").expect("/proc is available on linux") {
        let comm_path = entry.expect("task entry").path().join("comm");
        if let Ok(comm) = std::fs::read_to_string(comm_path) {
            if comm.trim_end().starts_with(prefix) {
                count += 1;
            }
        }
    }
    count
}

const CONNECTIONS: usize = 512;
const DRIVERS: usize = 2;

/// Serialises the tests in this file: [`threads_named`] counts threads
/// process-wide, so two servers alive at once (libtest runs tests in
/// parallel on multi-core machines) would double the `rpg-loop-*` count
/// and flake the exact-count assertions.
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn five_hundred_idle_keep_alive_connections_ride_on_two_driver_threads() {
    let _serial = exclusive();
    // An empty registry: the endpoints under test (`/v1/healthz`,
    // `/v1/stats`) are answered inline on the event loops, so the test
    // isolates the connection layer from pipeline cost.
    let server = common::spawn_with(Arc::new(CorpusRegistry::new()), |config| {
        config.workers = 1;
        config.drivers = DRIVERS;
        config.max_connections = CONNECTIONS + 64;
        config.keep_alive = true;
        // Idle far longer than the test runs: nothing below may be closed
        // for idleness.
        config.idle_timeout = Duration::from_secs(120);
        config.read_timeout = Duration::from_secs(30);
    });
    assert_eq!(server.driver_threads(), DRIVERS);
    assert_eq!(
        threads_named("rpg-loop-"),
        DRIVERS,
        "the event-loop pool must be exactly the configured fixed size"
    );

    // Open the full fleet first — every connection is live concurrently —
    // then serve one exchange on each while the other 511 sit idle.
    let mut conns: Vec<client::Conn> = (0..CONNECTIONS)
        .map(|i| {
            client::Conn::connect(server.addr())
                .unwrap_or_else(|e| panic!("connection {i} failed to open: {e}"))
        })
        .collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        let response = conn
            .get("/v1/healthz")
            .unwrap_or_else(|e| panic!("exchange on connection {i} failed: {e}"));
        assert_eq!(response.status, 200, "connection {i}");
        assert_eq!(
            response.header("connection"),
            Some("keep-alive"),
            "connection {i} must stay open"
        );
    }

    // All connections are open at once; the server says so, in-process and
    // over the wire.
    assert_eq!(server.open_connections(), CONNECTIONS);
    let stats = conns[0].get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let value: Value = serde_json::from_str(&stats.body).unwrap();
    let connections = value.get("connections").expect("connections section");
    assert_eq!(
        connections.get("open").and_then(Value::as_f64),
        Some(CONNECTIONS as f64),
        "/v1/stats must report the open-connection gauge"
    );
    assert_eq!(
        connections.get("drivers").and_then(Value::as_f64),
        Some(DRIVERS as f64)
    );

    // No per-connection threads appeared anywhere: the loop pool is still
    // exactly two threads with 512 connections in flight.
    assert_eq!(
        threads_named("rpg-loop-"),
        DRIVERS,
        "open connections must not grow the thread count"
    );
    assert_eq!(
        threads_named("rpg-conn-"),
        0,
        "no thread-per-connection drivers may remain"
    );

    // A second pass over every connection: each one is still alive and
    // serviceable after idling while the other 511 were served.
    for (i, conn) in conns.iter_mut().enumerate() {
        let response = conn
            .get("/v1/healthz")
            .unwrap_or_else(|e| panic!("second exchange on connection {i} failed: {e}"));
        assert_eq!(response.status, 200, "connection {i}, second exchange");
    }
    assert_eq!(server.stats().ok as usize, 2 * CONNECTIONS + 1);

    // Hanging up all 512 drains the gauge: the loops notice every FIN
    // without any request in flight.
    drop(conns);
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "open-connection gauge stuck at {} after mass hangup",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Connections per backend for the idle-churn test: CI-sized by default,
/// scaled up via `RPG_STRESS_CONNS` on machines with the file-descriptor
/// headroom to hold thousands of sockets open (each connection costs one
/// fd on the client side and one on the server side of this process).
fn stress_connections() -> usize {
    std::env::var("RPG_STRESS_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The same idle-at-scale contract on every backend the platform offers:
/// open `RPG_STRESS_CONNS` keep-alive connections, churn a slice of the
/// fleet through hangup/reconnect cycles, and require that exchanges stay
/// prompt, the thread pool stays fixed, and the open-connection gauge
/// tracks the churn exactly. Run against both `poll` and `epoll`, this is
/// the regression net for backend-specific readiness bugs (missed edges,
/// stale interest after fd reuse, unobserved FINs).
#[test]
fn idle_churn_holds_the_gauge_and_latency_flat_on_every_backend() {
    let _serial = exclusive();
    let connections = stress_connections();
    let churn = connections / 4;
    // A single exchange against a server whose only load is idle
    // connections; generous enough to absorb CI noise, tight enough to
    // catch a backend degrading to seconds under fleet-sized interest.
    let exchange_budget = Duration::from_secs(2);

    let mut backends = vec![IoBackendChoice::Poll];
    if cfg!(target_os = "linux") {
        backends.push(IoBackendChoice::Epoll);
    }
    for backend in backends {
        let server = common::spawn_with(Arc::new(CorpusRegistry::new()), |config| {
            config.io_backend = backend;
            config.workers = 1;
            config.drivers = DRIVERS;
            config.max_connections = connections + 64;
            config.keep_alive = true;
            config.idle_timeout = Duration::from_secs(120);
            config.read_timeout = Duration::from_secs(30);
        });
        assert_eq!(server.io_backend(), backend.resolve());

        let mut conns: Vec<client::Conn> = (0..connections)
            .map(|i| {
                client::Conn::connect(server.addr())
                    .unwrap_or_else(|e| panic!("[{backend:?}] connection {i} failed to open: {e}"))
            })
            .collect();
        let mut slowest = Duration::ZERO;
        let exchange = |conn: &mut client::Conn, label: &str| {
            let started = Instant::now();
            let response = conn
                .get("/v1/healthz")
                .unwrap_or_else(|e| panic!("[{backend:?}] {label} failed: {e}"));
            assert_eq!(response.status, 200, "[{backend:?}] {label}");
            started.elapsed()
        };
        for (i, conn) in conns.iter_mut().enumerate() {
            slowest = slowest.max(exchange(conn, &format!("exchange on connection {i}")));
        }
        assert_eq!(server.open_connections(), connections, "[{backend:?}]");

        // Churn: hang up a quarter of the fleet, wait for the gauge to
        // notice every FIN, reconnect the same count, and serve one
        // exchange on each replacement while the survivors idle.
        for round in 0..2 {
            drop(conns.split_off(connections - churn));
            let deadline = Instant::now() + Duration::from_secs(20);
            while server.open_connections() > connections - churn {
                assert!(
                    Instant::now() < deadline,
                    "[{backend:?}] round {round}: gauge stuck at {} after hangup of {churn}",
                    server.open_connections()
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            for i in 0..churn {
                let mut conn = client::Conn::connect(server.addr()).unwrap_or_else(|e| {
                    panic!("[{backend:?}] round {round}: reconnect {i} failed: {e}")
                });
                slowest = slowest.max(exchange(
                    &mut conn,
                    &format!("round {round} exchange on reconnect {i}"),
                ));
                conns.push(conn);
            }
            assert_eq!(
                server.open_connections(),
                connections,
                "[{backend:?}] round {round}"
            );
        }
        assert!(
            slowest <= exchange_budget,
            "[{backend:?}] slowest exchange took {slowest:?} with {connections} connections open"
        );

        // The churn rode entirely on the fixed loop pool.
        assert_eq!(threads_named("rpg-loop-"), DRIVERS, "[{backend:?}]");
        assert_eq!(threads_named("rpg-conn-"), 0, "[{backend:?}]");

        // Mass hangup drains the gauge to zero before the next backend
        // (or the drop-guard shutdown) takes the stage.
        drop(conns);
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.open_connections() > 0 {
            assert!(
                Instant::now() < deadline,
                "[{backend:?}] gauge stuck at {} after mass hangup",
                server.open_connections()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[test]
fn trickled_requests_hit_the_read_deadline_with_a_clean_close() {
    let _serial = exclusive();
    let read_timeout = Duration::from_millis(600);
    let server = common::spawn_with(Arc::new(CorpusRegistry::new()), |config| {
        config.workers = 1;
        config.drivers = DRIVERS;
        config.keep_alive = true;
        config.idle_timeout = Duration::from_secs(120);
        config.read_timeout = read_timeout;
    });

    // A healthy fleet of idle keep-alive connections shares the loops with
    // the tricklers; they must come through unscathed.
    let mut healthy: Vec<client::Conn> = (0..32)
        .map(|_| client::Conn::connect(server.addr()).unwrap())
        .collect();
    for conn in healthy.iter_mut() {
        assert_eq!(conn.get("/v1/healthz").unwrap().status, 200);
    }

    // Slowloris connections: send the request head one byte at a time,
    // slowly but steadily. The deadline is per-request wall clock, so a
    // trickle that never pauses long enough for a per-read timeout still
    // dies at `read_timeout` after its first byte.
    let tricklers = 4;
    let head = b"GET /v1/healthz HTTP/1.1\r\nhost: slow\r\n";
    let mut streams: Vec<TcpStream> = (0..tricklers)
        .map(|_| {
            let stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            stream
        })
        .collect();
    let started = Instant::now();
    'trickle: for byte_index in 0.. {
        for stream in &mut streams {
            // Writes may start failing once the server cuts us off —
            // that's the success condition, not an error.
            let _ = stream.write_all(&head[byte_index % head.len()..][..1]);
        }
        std::thread::sleep(Duration::from_millis(50));
        if started.elapsed() > read_timeout + Duration::from_millis(400) {
            break 'trickle;
        }
    }

    for (i, mut stream) in streams.into_iter().enumerate() {
        // The deadline answer is an explicit 408 announcing the close...
        let response = client::read_response(&mut stream, &mut Vec::new())
            .unwrap_or_else(|e| panic!("trickler {i} got no response: {e}"));
        assert_eq!(response.status, 408, "trickler {i}: {}", response.body);
        assert!(response.closes_connection(), "trickler {i}");
        // ...followed by a clean FIN (end-of-stream), not an RST aborting
        // the read.
        let mut rest = [0u8; 64];
        loop {
            match stream.read(&mut rest) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => panic!("trickler {i} was closed uncleanly: {e}"),
            }
        }
    }

    // The healthy fleet never noticed.
    for (i, conn) in healthy.iter_mut().enumerate() {
        assert_eq!(
            conn.get("/v1/healthz").unwrap().status,
            200,
            "healthy connection {i} was collateral damage"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.client_errors as usize, tricklers, "one 408 each");
}
