//! End-to-end integration tests across the workspace crates: corpus
//! generation → engines → RePaGer → evaluation metrics.

use rpg_corpus::LabelLevel;
use rpg_engines::{Query, ScholarEngine, SearchEngine};
use rpg_eval::metrics::{f1_score, precision};
use rpg_graph::topo;
use rpg_repager::render::output_to_text;
use rpg_repager::system::PathRequest;
use rpg_repager::{RepagerConfig, Variant};
use rpg_repro::demo_corpus;
use rpg_service::PathService;

#[test]
fn corpus_engines_and_repager_fit_together() {
    let corpus = demo_corpus();

    // The corpus is structurally sound: node ids align with paper ids and the
    // citation graph is a DAG.
    assert_eq!(corpus.graph().node_count(), corpus.len());
    assert!(topo::is_dag(corpus.graph()));
    assert!(!corpus.survey_bank().is_empty());

    // Every survey's ground truth consists of real corpus papers published no
    // later than the survey.
    for survey in corpus.survey_bank().iter() {
        for reference in &survey.references {
            let paper = corpus.paper(reference.paper).expect("reference resolves");
            assert!(
                paper.year <= survey.year + 1,
                "reference newer than the survey"
            );
        }
    }

    // The engine retrieves something for most survey queries.
    let scholar = ScholarEngine::build(&corpus);
    let mut answered = 0;
    for survey in corpus.survey_bank().iter().take(20) {
        if !scholar.search(&Query::simple(&survey.query, 10)).is_empty() {
            answered += 1;
        }
    }
    assert!(answered >= 15, "engine answered only {answered}/20 queries");

    // RePaGer produces a non-trivial, citation-consistent path for a survey
    // query and the flattened list scores above zero against the ground truth.
    let system = PathService::build(corpus.clone()).unwrap();
    let survey = corpus.survey_bank().iter().next().unwrap();
    let exclude = [survey.paper];
    let output = system
        .generate(&PathRequest {
            query: &survey.query,
            top_k: 30,
            max_year: Some(survey.year),
            exclude: &exclude,
            config: RepagerConfig::default(),
            variant: Variant::Newst,
        })
        .unwrap();
    assert!(!output.reading_list.is_empty());
    assert!(output.path.is_consistent());
    let truth = survey.label(LabelLevel::AtLeastOne);
    assert!(f1_score(&output.reading_list, &truth) > 0.0);

    // The rendered output mentions the path and at least one paper title.
    let text = output_to_text(&corpus, &output);
    assert!(text.contains("reading path"));
}

#[test]
fn repager_beats_a_random_baseline_on_precision() {
    let corpus = demo_corpus();
    let system = PathService::build(corpus.clone()).unwrap();
    let mut newst_precisions = Vec::new();
    let mut random_precisions = Vec::new();

    for (i, survey) in corpus.survey_bank().iter().take(8).enumerate() {
        let exclude = [survey.paper];
        let output = system
            .generate(&PathRequest {
                query: &survey.query,
                top_k: 30,
                max_year: Some(survey.year),
                exclude: &exclude,
                config: RepagerConfig::default(),
                variant: Variant::Newst,
            })
            .unwrap();
        if output.reading_list.is_empty() {
            continue;
        }
        let truth = survey.label(LabelLevel::AtLeastOne);
        newst_precisions.push(precision(&output.reading_list, &truth));

        // A deterministic "random" baseline: an arbitrary slice of eligible
        // papers of the same size.
        let eligible: Vec<_> = corpus
            .papers()
            .iter()
            .filter(|p| p.year <= survey.year && p.id != survey.paper)
            .map(|p| p.id)
            .collect();
        let start = (i * 97) % eligible.len().max(1);
        let arbitrary: Vec<_> = eligible
            .iter()
            .cycle()
            .skip(start)
            .take(output.reading_list.len())
            .copied()
            .collect();
        random_precisions.push(precision(&arbitrary, &truth));
    }

    let newst_mean: f64 = newst_precisions.iter().sum::<f64>() / newst_precisions.len() as f64;
    let random_mean: f64 = random_precisions.iter().sum::<f64>() / random_precisions.len() as f64;
    assert!(
        newst_mean > random_mean + 0.05,
        "NEWST precision {newst_mean:.3} does not clearly beat arbitrary selection {random_mean:.3}"
    );
}

#[test]
fn generation_is_reproducible_across_processes() {
    // demo_corpus is a pure function of its seed, and so is everything built
    // on top of it; two independent builds must agree.
    let a = demo_corpus();
    let b = demo_corpus();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    assert_eq!(a.survey_bank().len(), b.survey_bank().len());
    let sa = a.survey_bank().iter().next().unwrap();
    let sb = b.survey_bank().iter().next().unwrap();
    assert_eq!(sa.query, sb.query);
    assert_eq!(sa.references, sb.references);

    let system_a = PathService::build(a.clone()).unwrap();
    let system_b = PathService::build(b.clone()).unwrap();
    let exclude_a = [sa.paper];
    let exclude_b = [sb.paper];
    let out_a = system_a
        .generate(&PathRequest {
            query: &sa.query,
            top_k: 25,
            max_year: Some(sa.year),
            exclude: &exclude_a,
            config: RepagerConfig::default(),
            variant: Variant::Newst,
        })
        .unwrap();
    let out_b = system_b
        .generate(&PathRequest {
            query: &sb.query,
            top_k: 25,
            max_year: Some(sb.year),
            exclude: &exclude_b,
            config: RepagerConfig::default(),
            variant: Variant::Newst,
        })
        .unwrap();
    assert_eq!(out_a.reading_list, out_b.reading_list);
    assert_eq!(out_a.path.order, out_b.path.order);
}
