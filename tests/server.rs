//! Loopback integration tests for the `rpg-server` HTTP front end: byte
//! identity with in-process generation under concurrent clients, admission
//! control under overflow, malformed-input resilience, batch routing, and
//! multi-tenant refresh semantics over the wire.

use rpg_corpus::{generate, CorpusConfig};
use rpg_repager::system::PathRequest;
use rpg_repro::demo_corpus;
use rpg_server::{api, client, Server, ServerConfig};
use rpg_service::{CorpusRegistry, PathService};
use serde_json::Value;
use std::sync::Arc;
use std::time::Duration;

/// A registry serving the demo corpus as the `default` tenant.
fn demo_registry() -> Arc<CorpusRegistry> {
    let registry = Arc::new(CorpusRegistry::new());
    registry.register("default", demo_corpus()).unwrap();
    registry
}

fn spawn(registry: Arc<CorpusRegistry>, workers: usize, queue: usize) -> Server {
    Server::spawn(
        registry,
        ServerConfig {
            workers,
            queue_capacity: queue,
            ..ServerConfig::default()
        },
    )
    .expect("server binds an ephemeral port")
}

fn demo_queries(count: usize) -> Vec<(String, u16)> {
    demo_corpus()
        .survey_bank()
        .iter()
        .take(count)
        .map(|s| (s.query.clone(), s.year))
        .collect()
}

fn generate_body(query: &str, year: u16, top_k: usize) -> String {
    format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": {top_k}}}"#)
}

/// Extracts the `result` subtree of a 200 response and re-renders it with
/// the same encoder the expectation uses.
fn result_bytes(body: &str) -> String {
    let value: Value = serde_json::from_str(body).expect("response body parses");
    serde_json::to_string(value.get("result").expect("response has a result"))
        .expect("result re-serialises")
}

#[test]
fn concurrent_clients_get_byte_identical_json_to_in_process_generation() {
    let registry = demo_registry();
    // The direct service shares the server's artifacts, so any divergence
    // below is the HTTP layer's fault, not a different corpus build.
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn(registry, 4, 32);

    let queries = demo_queries(4);
    let expected: Vec<String> = queries
        .iter()
        .map(|(query, year)| {
            let output = direct
                .generate(&PathRequest {
                    max_year: Some(*year),
                    ..PathRequest::new(query, 25)
                })
                .unwrap();
            serde_json::to_string(&api::output_result_value(&output)).unwrap()
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..3 {
            let queries = &queries;
            let expected = &expected;
            let addr = server.addr();
            scope.spawn(move || {
                for i in 0..queries.len() {
                    // Stagger the per-thread order so clients collide on
                    // different requests.
                    let pick = (i + worker) % queries.len();
                    let (query, year) = &queries[pick];
                    let response =
                        client::post_json(addr, "/v1/generate", &generate_body(query, *year, 25))
                            .unwrap();
                    assert_eq!(response.status, 200, "query {query:?}: {}", response.body);
                    assert_eq!(
                        result_bytes(&response.body),
                        expected[pick],
                        "client {worker} diverged from in-process output on {query:?}"
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.ok, 12, "3 clients x 4 queries, all served");
    assert_eq!(stats.rejected, 0);
    assert!(stats.pipeline.requests >= 4, "fresh runs must be recorded");
}

#[test]
fn queue_overflow_gets_503_with_retry_after_and_the_server_recovers() {
    // One worker, a queue of one: with a stampede of concurrent uncached
    // requests (cache capacity 0 keeps every request on the slow path), at
    // most two can be in the system, so the rest must be turned away.
    let registry = Arc::new(CorpusRegistry::with_cache_capacity(0));
    registry.register("default", demo_corpus()).unwrap();
    let server = spawn(registry, 1, 1);
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 25);

    let clients = 8;
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let mut outcomes = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = barrier.clone();
                let addr = server.addr();
                let body = &body;
                scope.spawn(move || {
                    barrier.wait();
                    client::post_json(addr, "/v1/generate", body).unwrap()
                })
            })
            .collect();
        for handle in handles {
            outcomes.push(handle.join().unwrap());
        }
    });

    let ok = outcomes.iter().filter(|r| r.status == 200).count();
    let rejected = outcomes.iter().filter(|r| r.status == 503).count();
    assert_eq!(
        ok + rejected,
        clients,
        "unexpected statuses: {:?}",
        outcomes.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        rejected >= 1,
        "an 8-deep stampede into a 1+1 system must overflow"
    );
    for response in outcomes.iter().filter(|r| r.status == 503) {
        assert_eq!(response.header("retry-after"), Some("1"));
        assert!(response.body.contains("capacity"));
    }

    // Admission control never buffered beyond the bound, nothing died, and
    // the server keeps serving.
    assert!(server.queue_depth() <= 1);
    let after = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!(after.status, 200);
    let stats = server.stats();
    assert_eq!(stats.rejected as usize, rejected);
}

#[test]
fn malformed_bodies_are_400_and_the_same_workers_keep_serving() {
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    // A single worker: if any malformed request killed it, the follow-up
    // real request could never be answered.
    let server = spawn(registry, 1, 8);
    for bad in [
        "",
        "{",
        "null",
        r#"{"query": 42}"#,
        r#"{"requests": "not an array"}"#,
    ] {
        let response = client::post_json(server.addr(), "/v1/generate", bad).unwrap();
        assert_eq!(response.status, 400, "body {bad:?}");
    }

    let (query, year) = demo_queries(1).remove(0);
    let response = client::post_json(
        server.addr(),
        "/v1/generate",
        &generate_body(&query, year, 20),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let expected = direct
        .generate(&PathRequest {
            max_year: Some(year),
            ..PathRequest::new(&query, 20)
        })
        .unwrap();
    assert_eq!(
        result_bytes(&response.body),
        serde_json::to_string(&api::output_result_value(&expected)).unwrap()
    );
    let stats = server.stats();
    assert_eq!(stats.client_errors, 5);
    assert_eq!(stats.ok, 1);
}

#[test]
fn batch_preserves_order_and_isolates_per_item_failures() {
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn(registry, 2, 16);
    let queries = demo_queries(2);

    let body = format!(
        r#"{{"requests": [
            {{"query": {q0:?}, "max_year": {y0}, "top_k": 15}},
            {{"query": "anything", "corpus": "ghost"}},
            {{"query": {q1:?}, "max_year": {y1}, "top_k": 15}}
        ]}}"#,
        q0 = queries[0].0,
        y0 = queries[0].1,
        q1 = queries[1].0,
        y1 = queries[1].1,
    );
    let response = client::post_json(server.addr(), "/v1/batch", &body).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let value: Value = serde_json::from_str(&response.body).unwrap();
    let results = value
        .get("results")
        .and_then(Value::as_array)
        .expect("batch returns a results array");
    assert_eq!(results.len(), 3);

    for (slot, (query, year)) in [(0usize, &queries[0]), (2, &queries[1])] {
        let expected = direct
            .generate(&PathRequest {
                max_year: Some(*year),
                ..PathRequest::new(query, 15)
            })
            .unwrap();
        let got = serde_json::to_string(results[slot].get("result").expect("result")).unwrap();
        assert_eq!(
            got,
            serde_json::to_string(&api::output_result_value(&expected)).unwrap(),
            "batch slot {slot}"
        );
    }
    let failure = &results[1];
    assert!(failure.get("error").is_some());
    assert_eq!(failure.get("status").and_then(Value::as_f64), Some(404.0));
}

#[test]
fn stats_endpoint_tracks_cache_queue_and_stage_timings() {
    let registry = demo_registry();
    let server = spawn(registry, 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 20);

    let first = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    let second = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!((first.status, second.status), (200, 200));
    let first: Value = serde_json::from_str(&first.body).unwrap();
    let second: Value = serde_json::from_str(&second.body).unwrap();
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));

    let stats = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let stats: Value = serde_json::from_str(&stats.body).unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Value::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Value::as_f64), Some(1.0));
    assert_eq!(cache.get("entries").and_then(Value::as_f64), Some(1.0));
    let pipeline = stats.get("pipeline").expect("pipeline section");
    assert_eq!(pipeline.get("requests").and_then(Value::as_f64), Some(1.0));
    let mean = pipeline.get("mean").expect("mean timings");
    assert!(mean.get("total_us").and_then(Value::as_f64).unwrap() > 0.0);
    for stage in [
        "seed_us",
        "subgraph_us",
        "realloc_us",
        "steiner_us",
        "render_us",
    ] {
        assert!(
            mean.get(stage).and_then(Value::as_f64).unwrap() > 0.0,
            "stage {stage} unrecorded"
        );
    }
    let queue = stats.get("queue").expect("queue section");
    assert_eq!(queue.get("depth").and_then(Value::as_f64), Some(0.0));
    assert_eq!(queue.get("capacity").and_then(Value::as_f64), Some(16.0));
}

#[test]
fn tenants_are_isolated_and_refresh_evicts_only_one() {
    let registry = demo_registry();
    registry
        .register(
            "aux",
            generate(&CorpusConfig {
                seed: 0xAB,
                ..CorpusConfig::small()
            }),
        )
        .unwrap();
    let server = spawn(registry.clone(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);

    let on = |corpus: &str| {
        format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": 20, "corpus": {corpus:?}}}"#)
    };
    let via_default = client::post_json(server.addr(), "/v1/generate", &on("default")).unwrap();
    let via_aux = client::post_json(server.addr(), "/v1/generate", &on("aux")).unwrap();
    assert_eq!((via_default.status, via_aux.status), (200, 200));
    assert_ne!(
        result_bytes(&via_default.body),
        result_bytes(&via_aux.body),
        "different corpora must answer differently"
    );

    // Refresh `aux` through the shared registry handle while the server is
    // live: only aux's cache entries fall out.
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 1);
    registry
        .refresh(
            "aux",
            generate(&CorpusConfig {
                seed: 0xAC,
                ..CorpusConfig::small()
            }),
        )
        .unwrap();
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 0);

    let default_again = client::post_json(server.addr(), "/v1/generate", &on("default")).unwrap();
    let aux_again = client::post_json(server.addr(), "/v1/generate", &on("aux")).unwrap();
    let default_again: Value = serde_json::from_str(&default_again.body).unwrap();
    let aux_again: Value = serde_json::from_str(&aux_again.body).unwrap();
    assert_eq!(
        default_again.get("cached").and_then(Value::as_bool),
        Some(true),
        "the untouched tenant keeps its cache"
    );
    assert_eq!(
        aux_again.get("cached").and_then(Value::as_bool),
        Some(false),
        "the refreshed tenant must recompute"
    );
}

#[test]
fn slow_clients_cannot_pin_workers_forever() {
    let registry = Arc::new(CorpusRegistry::new());
    registry.register("default", demo_corpus()).unwrap();
    let server = Server::spawn(
        registry,
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A client that connects and never finishes its request ties up the
    // only worker until the read timeout fires — after which a healthy
    // request must get through.
    use std::io::Write;
    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    stalled
        .write_all(b"POST /v1/generate HTTP/1.1\r\n")
        .unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let health = client::get(server.addr(), "/v1/healthz").unwrap();
    assert_eq!(health.status, 200);
    drop(stalled);
}
