//! Loopback integration tests for the `rpg-server` HTTP front end: byte
//! identity with in-process generation under concurrent clients (one-shot
//! and keep-alive), pipelining from the retained connection buffer,
//! admission control under overflow (global `503` and per-tenant `429`),
//! HTTP/1.1 conformance rejections, malformed-input resilience, batch
//! routing, the corpus refresh endpoint, and multi-tenant refresh semantics
//! over the wire.
//!
//! Server spawning, readiness, and shutdown ride the shared harness in
//! `tests/common`; the ambient keep-alive mode comes from
//! `RPG_TEST_KEEP_ALIVE` (CI runs both), and tests that assert
//! keep-alive-specific behaviour pin the mode explicitly.

mod common;

use common::{demo_queries, demo_registry, generate_body, spawn, spawn_with};
use rpg_corpus::{generate, CorpusConfig};
use rpg_repager::system::PathRequest;
use rpg_repro::demo_corpus;
use rpg_server::{api, client};
use rpg_service::{CorpusRegistry, PathService};
use serde_json::Value;
use std::sync::Arc;
use std::time::Duration;

/// Extracts the `result` subtree of a 200 response and re-renders it with
/// the same encoder the expectation uses.
fn result_bytes(body: &str) -> String {
    let value: Value = serde_json::from_str(body).expect("response body parses");
    serde_json::to_string(value.get("result").expect("response has a result"))
        .expect("result re-serialises")
}

/// The canonical JSON a direct in-process run of this query produces.
fn expected_result(direct: &PathService, query: &str, year: u16, top_k: usize) -> String {
    let output = direct
        .generate(&PathRequest {
            max_year: Some(year),
            ..PathRequest::new(query, top_k)
        })
        .unwrap();
    serde_json::to_string(&api::output_result_value(&output)).unwrap()
}

#[test]
fn concurrent_clients_get_byte_identical_json_to_in_process_generation() {
    let registry = demo_registry();
    // The direct service shares the server's artifacts, so any divergence
    // below is the HTTP layer's fault, not a different corpus build.
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn(registry, 4, 32);

    let queries = demo_queries(4);
    let expected: Vec<String> = queries
        .iter()
        .map(|(query, year)| expected_result(&direct, query, *year, 25))
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..3 {
            let queries = &queries;
            let expected = &expected;
            let addr = server.addr();
            scope.spawn(move || {
                for i in 0..queries.len() {
                    // Stagger the per-thread order so clients collide on
                    // different requests.
                    let pick = (i + worker) % queries.len();
                    let (query, year) = &queries[pick];
                    let response =
                        client::post_json(addr, "/v1/generate", &generate_body(query, *year, 25))
                            .unwrap();
                    assert_eq!(response.status, 200, "query {query:?}: {}", response.body);
                    assert_eq!(
                        result_bytes(&response.body),
                        expected[pick],
                        "client {worker} diverged from in-process output on {query:?}"
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.ok, 12, "3 clients x 4 queries, all served");
    assert_eq!(stats.rejected, 0);
    assert!(stats.pipeline.requests >= 4, "fresh runs must be recorded");
}

#[test]
fn queue_overflow_gets_503_with_retry_after_and_the_server_recovers() {
    // One worker, a global request queue of one: with a stampede of
    // concurrent uncached requests (cache capacity 0 keeps every request
    // on the slow path), at most two can be in the system, so the rest
    // must be turned away.
    let server = spawn(common::demo_registry_without_cache(), 1, 1);
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 25);

    let clients = 8;
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let mut outcomes = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = barrier.clone();
                let addr = server.addr();
                let body = &body;
                scope.spawn(move || {
                    barrier.wait();
                    client::post_json(addr, "/v1/generate", body).unwrap()
                })
            })
            .collect();
        for handle in handles {
            outcomes.push(handle.join().unwrap());
        }
    });

    let ok = outcomes.iter().filter(|r| r.status == 200).count();
    let rejected = outcomes.iter().filter(|r| r.status == 503).count();
    assert_eq!(
        ok + rejected,
        clients,
        "unexpected statuses: {:?}",
        outcomes.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        rejected >= 1,
        "an 8-deep stampede into a 1+1 system must overflow"
    );
    for response in outcomes.iter().filter(|r| r.status == 503) {
        assert_eq!(response.header("retry-after"), Some("1"));
        assert!(response.body.contains("capacity"));
    }

    // Admission control never buffered beyond the bound, nothing died, and
    // the server keeps serving.
    assert!(server.request_depth() <= 1);
    let after = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!(after.status, 200);
    let stats = server.stats();
    assert_eq!(stats.rejected as usize, rejected);
}

#[test]
fn malformed_bodies_are_400_and_the_same_workers_keep_serving() {
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    // A single worker: if any malformed request killed it, the follow-up
    // real request could never be answered.
    let server = spawn(registry, 1, 8);
    for bad in [
        "",
        "{",
        "null",
        r#"{"query": 42}"#,
        r#"{"requests": "not an array"}"#,
    ] {
        let response = client::post_json(server.addr(), "/v1/generate", bad).unwrap();
        assert_eq!(response.status, 400, "body {bad:?}");
    }

    let (query, year) = demo_queries(1).remove(0);
    let response = client::post_json(
        server.addr(),
        "/v1/generate",
        &generate_body(&query, year, 20),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        result_bytes(&response.body),
        expected_result(&direct, &query, year, 20)
    );
    let stats = server.stats();
    assert_eq!(stats.client_errors, 5);
    assert_eq!(stats.ok, 1);
}

#[test]
fn batch_preserves_order_and_isolates_per_item_failures() {
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn(registry, 2, 16);
    let queries = demo_queries(2);

    let body = format!(
        r#"{{"requests": [
            {{"query": {q0:?}, "max_year": {y0}, "top_k": 15}},
            {{"query": "anything", "corpus": "ghost"}},
            {{"query": {q1:?}, "max_year": {y1}, "top_k": 15}}
        ]}}"#,
        q0 = queries[0].0,
        y0 = queries[0].1,
        q1 = queries[1].0,
        y1 = queries[1].1,
    );
    let response = client::post_json(server.addr(), "/v1/batch", &body).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let value: Value = serde_json::from_str(&response.body).unwrap();
    let results = value
        .get("results")
        .and_then(Value::as_array)
        .expect("batch returns a results array");
    assert_eq!(results.len(), 3);

    for (slot, (query, year)) in [(0usize, &queries[0]), (2, &queries[1])] {
        let got = serde_json::to_string(results[slot].get("result").expect("result")).unwrap();
        assert_eq!(
            got,
            expected_result(&direct, query, *year, 15),
            "batch slot {slot}"
        );
    }
    let failure = &results[1];
    assert!(failure.get("error").is_some());
    assert_eq!(failure.get("status").and_then(Value::as_f64), Some(404.0));
}

#[test]
fn stats_endpoint_tracks_cache_queue_connections_and_stage_timings() {
    let registry = demo_registry();
    let server = spawn(registry, 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 20);

    let first = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    let second = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!((first.status, second.status), (200, 200));
    let first: Value = serde_json::from_str(&first.body).unwrap();
    let second: Value = serde_json::from_str(&second.body).unwrap();
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));

    let stats = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let stats: Value = serde_json::from_str(&stats.body).unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Value::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Value::as_f64), Some(1.0));
    assert_eq!(cache.get("entries").and_then(Value::as_f64), Some(1.0));
    let pipeline = stats.get("pipeline").expect("pipeline section");
    assert_eq!(pipeline.get("requests").and_then(Value::as_f64), Some(1.0));
    let mean = pipeline.get("mean").expect("mean timings");
    assert!(mean.get("total_us").and_then(Value::as_f64).unwrap() > 0.0);
    for stage in [
        "seed_us",
        "subgraph_us",
        "realloc_us",
        "steiner_us",
        "render_us",
    ] {
        assert!(
            mean.get(stage).and_then(Value::as_f64).unwrap() > 0.0,
            "stage {stage} unrecorded"
        );
    }
    // The steiner/realloc work counters of the fresh run are aggregated and
    // exposed alongside the timings (sum and mean carry the same fields).
    for section in ["sum", "mean"] {
        let counters = pipeline
            .get(section)
            .and_then(|t| t.get("counters"))
            .unwrap_or_else(|| panic!("pipeline.{section}.counters missing"));
        for field in [
            "steiner_runs",
            "steiner_paths_expanded",
            "steiner_paths_skipped",
            "steiner_pruned_leaves",
            "scratch_allocations",
            "realloc_retries",
        ] {
            assert!(
                counters.get(field).and_then(Value::as_f64).is_some(),
                "pipeline.{section}.counters.{field} missing"
            );
        }
    }
    let sum_counters = pipeline.get("sum").unwrap().get("counters").unwrap();
    assert!(
        sum_counters
            .get("steiner_runs")
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0,
        "the fresh run must have recorded at least one KMB solve"
    );
    let queue = stats.get("queue").expect("queue section");
    assert_eq!(queue.get("depth").and_then(Value::as_f64), Some(0.0));
    assert_eq!(queue.get("capacity").and_then(Value::as_f64), Some(16.0));
    // The event-driven connection layer reports its gauges on the wire.
    let connections = stats.get("connections").expect("connections section");
    for gauge in ["accepted", "open", "drivers", "max", "rejected_503"] {
        assert!(
            connections.get(gauge).and_then(Value::as_f64).is_some(),
            "connections.{gauge} missing"
        );
    }
    assert!(
        connections.get("drivers").and_then(Value::as_f64).unwrap() >= 1.0,
        "at least one event loop must be reported"
    );
}

#[test]
fn tenants_are_isolated_and_refresh_evicts_only_one() {
    let registry = demo_registry();
    registry
        .register(
            "aux",
            generate(&CorpusConfig {
                seed: 0xAB,
                ..CorpusConfig::small()
            }),
        )
        .unwrap();
    let server = spawn(registry.clone(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);

    let on = |corpus: &str| {
        format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": 20, "corpus": {corpus:?}}}"#)
    };
    let via_default = client::post_json(server.addr(), "/v1/generate", &on("default")).unwrap();
    let via_aux = client::post_json(server.addr(), "/v1/generate", &on("aux")).unwrap();
    assert_eq!((via_default.status, via_aux.status), (200, 200));
    assert_ne!(
        result_bytes(&via_default.body),
        result_bytes(&via_aux.body),
        "different corpora must answer differently"
    );

    // Refresh `aux` through the shared registry handle while the server is
    // live: only aux's cache entries fall out.
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 1);
    registry
        .refresh(
            "aux",
            generate(&CorpusConfig {
                seed: 0xAC,
                ..CorpusConfig::small()
            }),
        )
        .unwrap();
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 0);

    let default_again = client::post_json(server.addr(), "/v1/generate", &on("default")).unwrap();
    let aux_again = client::post_json(server.addr(), "/v1/generate", &on("aux")).unwrap();
    let default_again: Value = serde_json::from_str(&default_again.body).unwrap();
    let aux_again: Value = serde_json::from_str(&aux_again.body).unwrap();
    assert_eq!(
        default_again.get("cached").and_then(Value::as_bool),
        Some(true),
        "the untouched tenant keeps its cache"
    );
    assert_eq!(
        aux_again.get("cached").and_then(Value::as_bool),
        Some(false),
        "the refreshed tenant must recompute"
    );
}

#[test]
fn refresh_endpoint_evicts_exactly_that_tenants_cached_results() {
    let registry = demo_registry();
    registry.register_artifacts("aux", registry.artifacts("default").unwrap());
    let server = spawn(registry.clone(), 2, 16);
    let (query, year) = demo_queries(1).remove(0);
    let on = |corpus: &str| {
        format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": 20, "corpus": {corpus:?}}}"#)
    };

    // Prime both tenants' cache entries over the wire.
    for corpus in ["default", "aux"] {
        let response = client::post_json(server.addr(), "/v1/generate", &on(corpus)).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 1);

    // Refresh one tenant over HTTP: exactly its entries fall out.
    let refreshed = client::post_json(server.addr(), "/v1/corpora/aux/refresh", "").unwrap();
    assert_eq!(refreshed.status, 200, "{}", refreshed.body);
    let value: Value = serde_json::from_str(&refreshed.body).unwrap();
    assert_eq!(value.get("corpus").and_then(Value::as_str), Some("aux"));
    assert_eq!(value.get("epoch").and_then(Value::as_f64), Some(1.0));
    assert_eq!(registry.cached_entries_for("default"), 1);
    assert_eq!(registry.cached_entries_for("aux"), 0);

    // The wire-visible consequence: the untouched tenant still answers
    // from cache, the refreshed one recomputes.
    let default_again = client::post_json(server.addr(), "/v1/generate", &on("default")).unwrap();
    let aux_again = client::post_json(server.addr(), "/v1/generate", &on("aux")).unwrap();
    let default_again: Value = serde_json::from_str(&default_again.body).unwrap();
    let aux_again: Value = serde_json::from_str(&aux_again.body).unwrap();
    assert_eq!(
        default_again.get("cached").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        aux_again.get("cached").and_then(Value::as_bool),
        Some(false)
    );

    // Unknown tenants are a 404; the refresh route is POST-only.
    let ghost = client::post_json(server.addr(), "/v1/corpora/ghost/refresh", "").unwrap();
    assert_eq!(ghost.status, 404);
    assert!(ghost.body.contains("ghost"));
    let wrong_method = client::get(server.addr(), "/v1/corpora/aux/refresh").unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn_with(registry, |config| {
        config.workers = 2;
        config.queue_capacity = 16;
        config.keep_alive = true;
    });

    let queries = demo_queries(3);
    let mut conn = client::Conn::connect(server.addr()).expect("persistent connection opens");
    // Four exchanges (three distinct queries plus a repeat) ride one TCP
    // connection, each byte-identical to the in-process pipeline.
    for (query, year) in queries.iter().chain(queries.first()) {
        let response = conn
            .post_json("/v1/generate", &generate_body(query, *year, 25))
            .expect("keep-alive exchange succeeds");
        assert_eq!(response.status, 200, "query {query:?}: {}", response.body);
        assert_eq!(
            response.header("connection"),
            Some("keep-alive"),
            "the server must promise to keep serving this connection"
        );
        assert_eq!(
            result_bytes(&response.body),
            expected_result(&direct, query, *year, 25),
            "keep-alive exchange diverged on {query:?}"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.ok, 4);
    assert_eq!(
        stats.accepted, 1,
        "four exchanges must share one accepted connection"
    );
}

#[test]
fn pipelined_second_request_is_served_from_the_retained_buffer() {
    use std::io::Write;
    let registry = demo_registry();
    let direct = PathService::with_artifacts(registry.artifacts("default").unwrap());
    let server = spawn_with(registry, |config| {
        config.workers = 2;
        config.queue_capacity = 16;
        config.keep_alive = true;
    });
    let queries = demo_queries(2);

    // Both requests go out in a single write before any response is read:
    // the bytes of the second arrive while the server parses the first, so
    // serving it correctly requires the retained per-connection buffer.
    let wire: String = queries
        .iter()
        .map(|(query, year)| {
            let body = generate_body(query, *year, 20);
            format!(
                "POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
        })
        .collect();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(wire.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut buf = Vec::new();
    for (query, year) in &queries {
        let response = client::read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(response.status, 200, "query {query:?}: {}", response.body);
        assert_eq!(
            result_bytes(&response.body),
            expected_result(&direct, query, *year, 20),
            "pipelined response diverged on {query:?}"
        );
    }
    assert_eq!(server.stats().accepted, 1);
}

#[test]
fn idle_keep_alive_connections_are_closed_by_the_server() {
    let server = spawn_with(demo_registry(), |config| {
        config.workers = 1;
        config.keep_alive = true;
        config.idle_timeout = Duration::from_millis(150);
    });

    let mut conn = client::Conn::connect(server.addr()).unwrap();
    let first = conn.get("/v1/healthz").unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));

    // Stay silent past the idle timeout: the server hangs up, so the next
    // exchange on this connection cannot complete.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        conn.get("/v1/healthz").is_err(),
        "an idle-closed connection must not serve another exchange"
    );
}

#[test]
fn connection_request_budget_is_honoured() {
    let server = spawn_with(demo_registry(), |config| {
        config.workers = 1;
        config.keep_alive = true;
        config.max_requests_per_connection = 2;
    });

    let mut conn = client::Conn::connect(server.addr()).unwrap();
    let first = conn.get("/v1/healthz").unwrap();
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = conn.get("/v1/healthz").unwrap();
    assert!(
        second.closes_connection(),
        "the budget-exhausting exchange must announce the close"
    );
    assert!(
        conn.get("/v1/healthz").is_err(),
        "the connection is gone after its request budget"
    );
    // A fresh connection serves again: the budget is per-connection state.
    assert_eq!(
        client::get(server.addr(), "/v1/healthz").unwrap().status,
        200
    );
}

#[test]
fn transfer_encoding_and_duplicate_content_length_are_rejected() {
    use std::io::Write;
    let server = spawn(demo_registry(), 1, 8);

    // A chunked body must be refused outright (501), not silently read as
    // an empty body — under keep-alive the unread chunk bytes would parse
    // as a smuggled second request.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            b"POST /v1/generate HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n\
              2\r\n{}\r\n0\r\n\r\n",
        )
        .unwrap();
    let response = client::read_response(&mut stream, &mut Vec::new()).unwrap();
    assert_eq!(response.status, 501, "{}", response.body);
    assert!(response.closes_connection(), "framing is lost: must close");
    assert!(response.body.contains("transfer-encoding"));

    // Conflicting Content-Length headers are the classic desync payload.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            b"POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: 2\r\ncontent-length: 40\r\n\r\n{}",
        )
        .unwrap();
    let response = client::read_response(&mut stream, &mut Vec::new()).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.closes_connection());

    // The server survives both rejections.
    assert_eq!(
        client::get(server.addr(), "/v1/healthz").unwrap().status,
        200
    );
}

#[test]
fn noisy_tenant_is_throttled_while_quiet_tenant_completes_everything() {
    // Two tenants over the same artifacts; no result cache, so every
    // request costs a full pipeline run on the single compute worker. The
    // per-tenant bound is tiny: the noisy stampede overflows its own
    // sub-queue (429) while the quiet tenant — one request in flight at a
    // time — must never be rejected. Two event loops carry all the
    // connections; the loops never block on compute, so a small fixed
    // driver pool is enough for any client count.
    let registry = Arc::new(CorpusRegistry::with_cache_capacity(0));
    registry.register("noisy", demo_corpus()).unwrap();
    registry.register_artifacts("quiet", registry.artifacts("noisy").unwrap());
    let server = spawn_with(registry, |config| {
        config.workers = 1;
        config.drivers = 2;
        config.queue_capacity = 16;
        config.tenant_queue_capacity = 2;
        config.keep_alive = true;
    });

    let (query, year) = demo_queries(1).remove(0);
    let body_for = |corpus: &str| {
        format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": 20, "corpus": {corpus:?}}}"#)
    };
    let noisy_body = body_for("noisy");
    let quiet_body = body_for("quiet");

    let noisy_clients = 6;
    let requests_each = 6;
    let barrier = Arc::new(std::sync::Barrier::new(noisy_clients + 1));
    let (noisy_outcomes, quiet_outcomes) = std::thread::scope(|scope| {
        let noisy_handles: Vec<_> = (0..noisy_clients)
            .map(|_| {
                let barrier = barrier.clone();
                let addr = server.addr();
                let body = &noisy_body;
                scope.spawn(move || {
                    let mut conn = client::Conn::connect(addr).unwrap();
                    barrier.wait();
                    (0..requests_each)
                        .map(|_| {
                            let response = conn.post_json("/v1/generate", body).unwrap();
                            if response.status == 429 {
                                assert_eq!(response.header("retry-after"), Some("1"));
                                assert!(response.body.contains("noisy"));
                            }
                            response.status
                        })
                        .collect::<Vec<u16>>()
                })
            })
            .collect();
        let quiet_handle = {
            let barrier = barrier.clone();
            let addr = server.addr();
            let body = &quiet_body;
            scope.spawn(move || {
                let mut conn = client::Conn::connect(addr).unwrap();
                barrier.wait();
                (0..5)
                    .map(|_| conn.post_json("/v1/generate", body).unwrap().status)
                    .collect::<Vec<u16>>()
            })
        };
        let noisy: Vec<u16> = noisy_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (noisy, quiet_handle.join().unwrap())
    });

    assert_eq!(
        quiet_outcomes,
        vec![200; 5],
        "the quiet tenant must complete every request"
    );
    assert!(
        noisy_outcomes.iter().all(|&s| s == 200 || s == 429),
        "unexpected noisy statuses: {noisy_outcomes:?}"
    );
    let throttled = noisy_outcomes.iter().filter(|&&s| s == 429).count();
    assert!(
        throttled >= 1,
        "a {noisy_clients}-client stampede into a bound of 2 must overflow: {noisy_outcomes:?}"
    );
    assert!(
        noisy_outcomes.iter().filter(|&&s| s == 200).count() >= 1,
        "throttling must shed load, not blackhole the tenant"
    );

    let stats = server.stats();
    assert_eq!(stats.throttled as usize, throttled);
    assert_eq!(stats.rejected, 0, "nothing hit the global 503 path");

    // The wire-visible stats expose the per-tenant queues and the 429
    // counter.
    let stats_response = client::get(server.addr(), "/v1/stats").unwrap();
    let value: Value = serde_json::from_str(&stats_response.body).unwrap();
    let queue = value.get("queue").expect("queue section");
    assert_eq!(
        queue.get("throttled_429").and_then(Value::as_f64),
        Some(throttled as f64)
    );
    let tenants = queue.get("tenants").expect("per-tenant section");
    for tenant in ["noisy", "quiet"] {
        let entry = tenants
            .get(tenant)
            .unwrap_or_else(|| panic!("tenant {tenant} missing"));
        assert_eq!(entry.get("depth").and_then(Value::as_f64), Some(0.0));
        assert_eq!(entry.get("capacity").and_then(Value::as_f64), Some(2.0));
        assert_eq!(entry.get("weight").and_then(Value::as_f64), Some(1.0));
    }
}

#[test]
fn slow_clients_cannot_pin_the_server() {
    let server = spawn_with(demo_registry(), |config| {
        config.workers = 1;
        config.queue_capacity = 4;
        config.read_timeout = Duration::from_millis(300);
    });

    // A client that connects and never finishes its request used to tie up
    // a driver thread; under the event loop it ties up nothing — a healthy
    // request gets through immediately, and the stalled connection is
    // closed once its per-request read deadline fires.
    use std::io::Write;
    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    stalled
        .write_all(b"POST /v1/generate HTTP/1.1\r\n")
        .unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let health = client::get(server.addr(), "/v1/healthz").unwrap();
    assert_eq!(health.status, 200);

    // The deadline fires with a 408 so the slow client learns why.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let timeout = client::read_response(&mut stalled, &mut Vec::new()).unwrap();
    assert_eq!(timeout.status, 408);
    assert!(timeout.closes_connection());
    drop(stalled);
}

#[test]
fn write_then_half_close_still_gets_served() {
    // A legal client pattern: write the complete request (or several,
    // pipelined), shutdown the write side, then read. Data and FIN can
    // land in the same readiness batch, and the buffered requests must be
    // served before end-of-stream is interpreted as truncation. Serving
    // the *second* pipelined request requires keep-alive, so the mode is
    // pinned.
    use std::io::Write;
    let server = spawn_with(demo_registry(), |config| {
        config.workers = 1;
        config.queue_capacity = 8;
        config.keep_alive = true;
    });
    for attempt in 0..20 {
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let one = "GET /v1/healthz HTTP/1.1\r\nhost: t\r\n\r\n";
        stream.write_all([one, one].concat().as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = Vec::new();
        for exchange in 0..2 {
            let response = client::read_response(&mut stream, &mut buf)
                .unwrap_or_else(|e| panic!("attempt {attempt} exchange {exchange}: {e}"));
            assert_eq!(
                response.status, 200,
                "attempt {attempt} exchange {exchange}: {}",
                response.body
            );
        }
    }
    // A genuinely truncated request still earns its 400.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /v1/generate HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let truncated = client::read_response(&mut stream, &mut Vec::new()).unwrap();
    assert_eq!(truncated.status, 400);
    assert!(truncated.closes_connection());
}

#[test]
fn zero_and_garbage_deadline_headers_are_rejected_up_front() {
    // A zero `x-rpg-deadline-ms` budget is already expired on arrival —
    // every request carrying it would queue, occupy a compute slot, and
    // then be shed with a 503. Garbage used to be silently ignored, which
    // hid client-side bugs. Both are a 400 at parse time now.
    let server = spawn(demo_registry(), 2, 8);
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 10);

    for bad in ["0", "soon", "-5", "1.5", ""] {
        let response = client::request_with(
            server.addr(),
            "POST",
            "/v1/generate",
            Some(&body),
            &[("x-rpg-deadline-ms", bad)],
        )
        .unwrap();
        assert_eq!(response.status, 400, "header {bad:?}: {}", response.body);
        assert!(
            response.body.contains("x-rpg-deadline-ms"),
            "the error must name the offending header: {}",
            response.body
        );
    }

    // Batch admission parses the header once per request, before any item
    // is billed, so the whole batch is refused — not a per-item error.
    let batch = format!(r#"{{"requests": [{{"query": {query:?}}}]}}"#);
    let response = client::request_with(
        server.addr(),
        "POST",
        "/v1/batch",
        Some(&batch),
        &[("x-rpg-deadline-ms", "0")],
    )
    .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);

    // A generous valid budget still serves normally.
    let response = client::request_with(
        server.addr(),
        "POST",
        "/v1/generate",
        Some(&body),
        &[("x-rpg-deadline-ms", "30000")],
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
}

#[test]
fn a_panic_past_the_reply_keeps_the_worker_and_releases_the_charge() {
    // The fault this guards against: a panic *after* `run_job`'s inner
    // pipeline guard (reply already sent) used to unwind out of the worker
    // loop, killing the thread and leaking the tenant's in-flight charge.
    // With one worker and an in-flight cap of 1, either leak would wedge
    // the server; the outer RAII guard must absorb both.
    let server = spawn_with(demo_registry(), |config| {
        config.workers = 1;
        config.queue_capacity = 4;
        config.tenant_inflight = vec![("default".to_string(), 1)];
    });
    let (query, year) = demo_queries(1).remove(0);
    let body = generate_body(&query, year, 10);

    rpg_server::test_hooks::PANIC_AFTER_REPLY.store(true, std::sync::atomic::Ordering::SeqCst);
    let first = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);

    // The charge drains back to zero (the reply lands before the unwind
    // does, hence the poll)...
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats: Value =
            serde_json::from_str(&client::get(server.addr(), "/v1/stats").unwrap().body).unwrap();
        let in_flight = stats
            .get("tenants")
            .and_then(|t| t.get("default"))
            .and_then(|row| row.get("in_flight"))
            .and_then(Value::as_f64);
        if in_flight == Some(0.0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "in-flight charge never released: {in_flight:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...and the sole worker is still alive to serve the next request
    // through the cap the leak would have pinned shut.
    let second = client::post_json(server.addr(), "/v1/generate", &body).unwrap();
    assert_eq!(second.status, 200, "{}", second.body);
}
