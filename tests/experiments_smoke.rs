//! Integration smoke tests of the experiment runners: every table/figure
//! module runs on the demonstration corpus and reproduces the paper's
//! qualitative shape.

use rpg_corpus::LabelLevel;
use rpg_eval::experiments::{
    fig2_overlap, fig4_statistics, fig8_main, fig9_case_study, table2_seed_count, table3_ablation,
    table4_runtime, table5_human, ExperimentContext,
};
use rpg_repro::demo_corpus;

#[test]
fn observation_study_shows_the_expansion_effect() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 10, 8, 2);
    let report = fig2_overlap::run(&ctx, &[30], 8);
    let panel = &report.panels[0];
    // Observation II: 2nd-order neighbourhoods cover clearly more of the
    // reference list than the direct engine results.
    assert!(panel.ratios[2][0] > panel.ratios[0][0]);
    // Observation I: the direct results do not cover the full reference list.
    assert!(panel.ratios[0][0] < 0.9);
}

#[test]
fn statistics_report_matches_the_survey_bank() {
    let corpus = demo_corpus();
    let report = fig4_statistics::run(&corpus);
    assert_eq!(
        report.citation_distribution.total(),
        corpus.survey_bank().len()
    );
    assert!(report.summary.avg_survey_references > 5.0);
    assert!(!fig4_statistics::format(&report).is_empty());
}

#[test]
fn main_comparison_produces_the_papers_ordering() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 15, 8, 2);
    let report = fig8_main::run(&ctx, &[20, 30, 40]);
    assert_eq!(report.levels.len(), 3);

    let mean_f1 = |method: &str| {
        let curve = report.curve(LabelLevel::AtLeastOne, method).unwrap();
        curve.points.iter().map(|p| p.f1).sum::<f64>() / curve.points.len() as f64
    };
    let newst = mean_f1("NEWST");
    let pagerank = mean_f1("PageRank");
    assert!(newst > 0.0);
    // The paper's most robust ordering: NEWST clearly above the PageRank
    // re-ranking baseline.
    assert!(
        newst > pagerank,
        "NEWST {newst:.3} vs PageRank {pagerank:.3}"
    );
}

#[test]
fn seed_count_sweep_and_ablation_run_to_completion() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 15, 6, 2);

    let table2 = table2_seed_count::run(&ctx, &[10, 30], 30, LabelLevel::AtLeastOne);
    assert_eq!(table2.rows.len(), 2);
    assert!(table2
        .rows
        .iter()
        .all(|r| r.f1 >= 0.0 && r.precision <= 1.0));

    let table3 = table3_ablation::run(&ctx, 30, LabelLevel::AtLeastOne);
    assert_eq!(table3.rows.len(), 7);
    let newst = table3.row(rpg_repager::Variant::Newst).unwrap();
    assert!(newst.f1 > 0.0);
}

#[test]
fn runtime_study_reports_interactive_latencies() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 15, 5, 2);
    let report = table4_runtime::run(&ctx, 5);
    let avg = report.average.expect("measured at least one query");
    assert!(
        avg.millis < 10_000.0,
        "query latency {:.0}ms is not interactive",
        avg.millis
    );
    assert!(avg.nodes > 0);
}

#[test]
fn human_proxy_prefers_newst_for_prerequisites() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 10, 40, 2);
    let report = table5_human::run(&ctx, 4, 30);
    assert_eq!(report.rows.len(), 6);
    let prereq_b: f64 = report
        .rows
        .iter()
        .filter(|r| r.criterion == "Prerequisite")
        .map(|r| r.shares.prefer_b)
        .sum();
    let prereq_a: f64 = report
        .rows
        .iter()
        .filter(|r| r.criterion == "Prerequisite")
        .map(|r| r.shares.prefer_a)
        .sum();
    assert!(prereq_b >= prereq_a);
}

#[test]
fn case_study_discovers_prerequisite_papers() {
    let corpus = demo_corpus();
    let ctx = ExperimentContext::new(&corpus, 10, 40, 2);
    let report = fig9_case_study::run(&ctx, None);
    assert!(!report.path_papers.is_empty());
    assert!(!report.discovered_papers.is_empty());
    assert!(report.rendered_dot.contains("digraph"));
}
