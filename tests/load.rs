//! Open-loop adversarial load harness: the isolation proof for the
//! overload work.
//!
//! Closed-loop clients (send, wait, send) slow themselves down exactly when
//! the server struggles, flattering every latency number. The quiet tenant
//! here is **open-loop**: its requests fire on a fixed schedule regardless
//! of whether earlier ones came back, the way real independent users
//! arrive. Around it, adversaries do their worst — a heavy-tailed stampede
//! from a noisy tenant, slowloris connections trickling bytes, a
//! cache-busting sweep, an abandonment storm of mid-compute hangups — and
//! the assertion is always the same shape: the quiet tenant completes
//! everything within a bounded p99 while the adversary is throttled,
//! timed out, shed, or cancelled, and `/v1/stats` tells that story per
//! tenant.
//!
//! Every scenario honours `RPG_LOAD_SCALE` (default 1): CI's `load-smoke`
//! job runs at scale 1 in both keep-alive modes; a soak run sets it
//! higher.

mod common;

use common::{demo_registry_without_cache, spawn_with};
use rpg_repro::demo_corpus;
use rpg_server::client;
use rpg_service::CorpusRegistry;
use serde_json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Multiplier for client counts and request volumes (`RPG_LOAD_SCALE`).
fn scale() -> usize {
    std::env::var("RPG_LOAD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &usize| s >= 1)
        .unwrap_or(1)
}

/// A registry where `noisy` and `quiet` share one corpus's artifacts (so
/// results are comparable) and nothing is cached (so every request costs a
/// real pipeline run).
fn two_tenant_registry() -> Arc<CorpusRegistry> {
    let registry = Arc::new(CorpusRegistry::with_cache_capacity(0));
    registry.register("noisy", demo_corpus()).unwrap();
    registry.register_artifacts("quiet", registry.artifacts("noisy").unwrap());
    registry
}

/// A generate body for one tenant; `salt` varies `top_k` so a result cache
/// (when present) can never answer two stampede requests with one compute.
fn body_for(query: &str, year: u16, tenant: &str, salt: usize) -> String {
    let top_k = 5 + (salt % 17);
    format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": {top_k}, "corpus": {tenant:?}}}"#)
}

/// Client-side quantile over measured latencies (exact, not bucketed).
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Fetches the `/v1/stats` row of one tenant from the `tenants` section.
fn tenant_row(addr: std::net::SocketAddr, tenant: &str) -> Value {
    let body = client::get(addr, "/v1/stats").unwrap().body;
    let value: Value = serde_json::from_str(&body).expect("stats are JSON");
    value
        .get("tenants")
        .and_then(|t| t.get(tenant))
        .cloned()
        .unwrap_or_else(|| panic!("tenant {tenant} missing from stats: {body}"))
}

/// A tiny deterministic LCG: the adversaries want skewed, repeatable
/// arrival gaps, not cryptographic randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Waits until the single compute worker provably holds a just-sent plug
/// request: its lane exists (admitted), the queue is empty (popped), and
/// nothing has completed yet.
fn wait_worker_busy(server: &common::TestServer, tenant: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let lane_exists = server
            .tenant_depths()
            .iter()
            .any(|(name, _)| name == tenant);
        if lane_exists && server.request_depth() == 0 && server.stats().handled == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "worker never picked up the plug request"
        );
        std::thread::yield_now();
    }
}

/// The open-loop quiet tenant: `count` requests launched on a fixed
/// `gap` schedule, each on its own thread and connection, no matter how
/// the earlier ones are faring. Returns each request's (status, latency).
fn open_loop_quiet(
    addr: std::net::SocketAddr,
    queries: &[(String, u16)],
    tenant: &str,
    count: usize,
    gap: Duration,
) -> Vec<(u16, Duration)> {
    let mut handles = Vec::with_capacity(count);
    for i in 0..count {
        let (query, year) = queries[i % queries.len()].clone();
        let tenant = tenant.to_string();
        let handle = std::thread::spawn(move || {
            let body = body_for(&query, year, &tenant, 0);
            let started = Instant::now();
            let response = client::post_json(addr, "/v1/generate", &body);
            let elapsed = started.elapsed();
            (response.map(|r| r.status).unwrap_or(0), elapsed)
        });
        handles.push(handle);
        std::thread::sleep(gap);
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn heavy_tailed_stampede_cannot_move_the_quiet_tenants_tail() {
    // Two compute workers, the noisy tenant capped to one of them and to a
    // two-deep queue: however hard it stampedes, one worker plus one queue
    // slot is all it can occupy, and the quiet tenant's open-loop schedule
    // must sail through on the other.
    let scale = scale();
    let server = spawn_with(two_tenant_registry(), |config| {
        config.workers = 2;
        config.drivers = 2;
        config.queue_capacity = 64;
        config.tenant_queue_capacity = 2;
        config.tenant_inflight = vec![("noisy".to_string(), 1)];
    });
    let addr = server.addr();
    let queries = common::demo_queries(4);

    // The stampede: bursty threads with heavy-tailed gaps (mostly
    // back-to-back, occasionally pausing — the pattern that defeats naive
    // rate limiting).
    let noisy_threads = 4;
    let per_thread = 6 * scale;
    let noisy_handles: Vec<_> = (0..noisy_threads)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg(0x9e3779b97f4a7c15 ^ t as u64);
                let mut statuses = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let (query, year) = &queries[(t + i) % queries.len()];
                    let body = body_for(query, *year, "noisy", t * per_thread + i);
                    let status = client::post_json(addr, "/v1/generate", &body)
                        .map(|r| r.status)
                        .unwrap_or(0);
                    statuses.push(status);
                    // Pareto-ish gap: 1 ms mode, rare ~128 ms spikes.
                    let gap = 1u64 << (rng.next() % 8).saturating_sub(4);
                    std::thread::sleep(Duration::from_millis(gap));
                }
                statuses
            })
        })
        .collect();

    // The quiet tenant's open-loop schedule runs against the stampede.
    let quiet = open_loop_quiet(
        addr,
        &queries,
        "quiet",
        8 * scale,
        Duration::from_millis(120),
    );

    let noisy: Vec<u16> = noisy_handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    // Quiet: everything completes, and the tail stays bounded — the
    // stampede may cost it one noisy compute of queueing, never a pile-up.
    let mut latencies: Vec<Duration> = quiet.iter().map(|&(_, d)| d).collect();
    latencies.sort_unstable();
    assert!(
        quiet.iter().all(|&(status, _)| status == 200),
        "quiet statuses: {:?}",
        quiet.iter().map(|&(s, _)| s).collect::<Vec<_>>()
    );
    let p99 = quantile(&latencies, 0.99);
    assert!(
        p99 < Duration::from_secs(3),
        "quiet p99 {p99:?} blew up under the stampede"
    );

    // Noisy: throttled (its own 429s), never crashing the server, and at
    // least some of its work served — shed load, not a blackhole.
    assert!(
        noisy.iter().all(|&s| s == 200 || s == 429 || s == 503),
        "noisy statuses: {noisy:?}"
    );
    let throttled = noisy.iter().filter(|&&s| s == 429).count();
    assert!(throttled >= 1, "a capped stampede must overflow: {noisy:?}");
    assert!(noisy.contains(&200), "noisy is throttled, not starved");

    // The server tells the same story per tenant.
    let quiet_row = tenant_row(addr, "quiet");
    let latency = quiet_row.get("latency").expect("latency object");
    assert_eq!(
        latency.get("count").and_then(Value::as_f64),
        Some(quiet.len() as f64),
        "every quiet request recorded a latency sample"
    );
    let p50 = latency.get("p50").and_then(Value::as_f64).expect("p50");
    let p99 = latency.get("p99").and_then(Value::as_f64).expect("p99");
    let p999 = latency.get("p999").and_then(Value::as_f64).expect("p999");
    assert!(
        p50 <= p99 && p99 <= p999,
        "quantiles are monotone: {latency:?}"
    );
    assert_eq!(
        quiet_row.get("cancelled").and_then(Value::as_f64),
        Some(0.0)
    );
    let stats_body = client::get(addr, "/v1/stats").unwrap().body;
    let stats: Value = serde_json::from_str(&stats_body).unwrap();
    let noisy_queue = stats
        .get("queue")
        .and_then(|q| q.get("tenants"))
        .and_then(|t| t.get("noisy"))
        .expect("noisy queue row");
    assert_eq!(
        noisy_queue.get("inflight").and_then(Value::as_f64),
        Some(1.0),
        "the cap that made this hold is visible in the stats"
    );
}

#[test]
fn slowloris_siege_never_starves_compute() {
    // Dozens of connections that send a few header bytes and stall. Under
    // the event loop they cost poll-set entries, not threads — so the
    // quiet tenant's requests must be served at full speed throughout, and
    // the stalled connections die by read-deadline, not by operator.
    let scale = scale();
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
        config.drivers = 2;
        config.read_timeout = Duration::from_millis(500);
    });
    let addr = server.addr();
    let queries = common::demo_queries(3);

    let mut stalled: Vec<TcpStream> = (0..16 * scale)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).unwrap();
            // A plausible prefix — enough to start the read deadline.
            stream
                .write_all(format!("POST /v1/generate HTTP/1.1\r\nx-siege: {i}\r\n").as_bytes())
                .unwrap();
            stream
        })
        .collect();

    let quiet = open_loop_quiet(
        addr,
        &queries,
        "default",
        6 * scale,
        Duration::from_millis(100),
    );
    assert!(
        quiet.iter().all(|&(status, _)| status == 200),
        "quiet statuses under siege: {:?}",
        quiet.iter().map(|&(s, _)| s).collect::<Vec<_>>()
    );
    let mut latencies: Vec<Duration> = quiet.iter().map(|&(_, d)| d).collect();
    latencies.sort_unstable();
    let p99 = quantile(&latencies, 0.99);
    assert!(
        p99 < Duration::from_secs(3),
        "quiet p99 {p99:?} under siege"
    );

    // The sieged sockets are reaped by the read deadline — the server ends
    // the siege with no connections left open.
    stalled.clear();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "sieged connections never reaped: {} open",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(client::get(addr, "/v1/healthz").unwrap().status, 200);
}

#[test]
fn abandonment_storm_is_cancelled_not_computed() {
    // Clients that enqueue work and vanish with an RST before the reply.
    // Every abandoned job must be skipped by the compute pool (cancelled
    // counter, no pipeline run) while a well-behaved tenant keeps being
    // served. The `expect: 100-continue` interim reply left unread turns
    // each close into the RST the half-close probe classifies as Reset.
    let scale = scale();
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
        config.queue_capacity = 64;
        config.tenant_queue_capacity = 32;
    });
    let addr = server.addr();
    let queries = common::demo_queries(3);

    // Plug the single worker with one slow request so the storm's jobs are
    // all still queued when their connections die.
    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let body = format!(
            r#"{{"query": {plug_query:?}, "top_k": 40, "seed_count": 400, "corpus": "default"}}"#
        );
        assert_eq!(
            client::post_json(addr, "/v1/generate", &body)
                .unwrap()
                .status,
            200
        );
    });
    wait_worker_busy(&server, "default");

    let storm = 8 * scale;
    let mut streams = Vec::with_capacity(storm);
    for i in 0..storm {
        let (query, year) = &queries[i % queries.len()];
        let body = body_for(query, *year, "default", i);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /v1/generate HTTP/1.1\r\nhost: t\r\nexpect: 100-continue\r\n\
                     content-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        streams.push(stream);
    }
    // Wait until the storm is queued behind the plug, then vanish: the
    // unread `100 Continue` in every receive buffer turns each close into
    // an RST.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.request_depth() < storm {
        assert!(
            Instant::now() < deadline,
            "storm never queued: {} of {storm}",
            server.request_depth()
        );
        std::thread::yield_now();
    }
    drop(streams);

    plug.join().unwrap();
    // The storm drains without computing: pipeline ran only for the plug.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.request_depth() > 0 || server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "storm never drained");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(
        stats.pipeline.requests, 1,
        "only the plug computed; the storm was cancelled"
    );
    let row = tenant_row(addr, "default");
    assert_eq!(
        row.get("cancelled").and_then(Value::as_f64),
        Some(storm as f64),
        "every abandoned job is counted: {row:?}"
    );
    // The well-behaved tenant is still served at full speed.
    let (query, year) = &queries[1];
    let response =
        client::post_json(addr, "/v1/generate", &body_for(query, *year, "default", 0)).unwrap();
    assert_eq!(response.status, 200);
}

#[test]
fn deadline_shedding_keeps_a_backlog_from_going_stale() {
    // A tenant with a short deadline budget dumps a backlog far deeper than
    // the budget covers onto a single worker: each queued request's wait
    // grows with its position, so the tail of the backlog is provably stale
    // by the time the worker reaches it and must be shed with 503s instead
    // of burning compute on replies nobody is waiting for — and the shed
    // count matches what the clients saw. (One uncached demo generate costs
    // ~2 ms release / ~10 ms debug, so a 96-deep backlog represents at
    // least ~150 ms of queue delay against a 50 ms budget on any machine.)
    let scale = scale();
    let backlog = 96 * scale;
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
        config.queue_capacity = backlog + 16;
        config.tenant_queue_capacity = backlog + 16;
        config.default_deadline_ms = Some(50);
    });
    let addr = server.addr();
    let queries = common::demo_queries(3);

    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let body = format!(
            r#"{{"query": {plug_query:?}, "top_k": 40, "seed_count": 400, "corpus": "default"}}"#
        );
        // The plug outlives its own 50 ms budget only because it is
        // popped immediately — deadlines gate the *queue*, not compute.
        assert_eq!(
            client::post_json(addr, "/v1/generate", &body)
                .unwrap()
                .status,
            200
        );
    });
    wait_worker_busy(&server, "default");

    let handles: Vec<_> = (0..backlog)
        .map(|i| {
            let (query, year) = queries[1 + i % 2].clone();
            std::thread::spawn(move || {
                let body = body_for(&query, year, "default", i);
                client::post_json(addr, "/v1/generate", &body)
                    .map(|r| r.status)
                    .unwrap_or(0)
            })
        })
        .collect();
    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    plug.join().unwrap();

    let shed_client = statuses.iter().filter(|&&s| s == 503).count();
    assert!(
        shed_client >= 1,
        "a 50 ms budget behind a {backlog}-deep single-worker backlog must shed: {statuses:?}"
    );
    assert!(
        statuses.iter().all(|&s| s == 200 || s == 503),
        "unexpected statuses: {statuses:?}"
    );
    // The worker bumps the shed counter after queueing each 503 reply, so
    // give the last increments a moment to land before pinning the count.
    let deadline = Instant::now() + Duration::from_secs(5);
    let row = loop {
        let row = tenant_row(addr, "default");
        if row.get("shed").and_then(Value::as_f64) == Some(shed_client as f64)
            || Instant::now() >= deadline
        {
            break row;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        row.get("shed").and_then(Value::as_f64),
        Some(shed_client as f64),
        "server-side shed count matches the clients' 503s: {row:?}"
    );
}
