//! Control-plane integration suite: tenant manifests, the authenticated
//! admin API, wire-operable corpus lifecycle (`PUT`/`DELETE`/reload), live
//! fair-queue retuning, per-item batch billing, and mid-compute hangup
//! cancellation — all over real TCP against one server, with no restarts.
//!
//! Every server here runs with `--auth on` semantics (bearer keys from the
//! `tests/common` manifest fixture), so CI exercising this suite in both
//! keep-alive modes is what keeps the authenticated path covered.

mod common;

use common::{
    demo_manifest_json, demo_registry_without_cache, get_with_key, post_json_with_key,
    request_with_key, spawn_manifest_server, spawn_with, tenant_query, TestServer, ADMIN_KEY,
    ALPHA_KEY, BETA_KEY,
};
use rpg_server::client;
use rpg_service::{CorpusRegistry, Manifest};
use serde_json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parse(body: &str) -> Value {
    serde_json::from_str(body).expect("response body is JSON")
}

/// A generate body against an explicit corpus.
fn gen_body(query: &str, year: u16, corpus: Option<&str>) -> String {
    match corpus {
        Some(corpus) => {
            format!(
                r#"{{"query": {query:?}, "max_year": {year}, "top_k": 10, "corpus": {corpus:?}}}"#
            )
        }
        None => format!(r#"{{"query": {query:?}, "max_year": {year}, "top_k": 10}}"#),
    }
}

/// A deliberately expensive generate body (hundreds of seeds) used to hold
/// a compute worker busy while the test stages queue state behind it.
fn slow_body(query: &str, corpus: &str) -> String {
    format!(r#"{{"query": {query:?}, "top_k": 40, "seed_count": 400, "corpus": {corpus:?}}}"#)
}

/// Waits until the single compute worker provably holds the plug request:
/// the tenant's lane exists (the plug was admitted), the queue is empty
/// (the worker popped it), and nothing has completed yet.
fn wait_worker_busy(server: &TestServer, tenant: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let lane_exists = server
            .tenant_depths()
            .iter()
            .any(|(name, _)| name == tenant);
        if lane_exists && server.request_depth() == 0 && server.stats().handled == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "worker never picked up the plug request"
        );
        std::thread::yield_now();
    }
}

#[test]
fn manifest_round_trip_parse_apply_listing_matches() {
    let server = spawn_manifest_server(|_| {});
    // The tenants the manifest declares are the tenants the server serves.
    let health = client::get(server.addr(), "/v1/healthz").unwrap();
    assert_eq!(health.status, 200);
    let corpora = parse(&health.body);
    let names: Vec<&str> = corpora
        .get("corpora")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(names, ["alpha", "beta"]);

    // The control-plane listing round-trips the manifest's specs and
    // tuning: seeds, epochs, weights.
    let listing = get_with_key(server.addr(), "/v1/corpora", ADMIN_KEY).unwrap();
    assert_eq!(listing.status, 200);
    let manifest = Manifest::from_json(&demo_manifest_json()).unwrap();
    let rows = parse(&listing.body);
    let rows = rows.get("corpora").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        let name = row.get("name").and_then(Value::as_str).unwrap();
        let spec = manifest.tenant(name).unwrap().corpus.as_ref().unwrap();
        assert_eq!(
            row.get("corpus")
                .and_then(|c| c.get("seed"))
                .and_then(Value::as_f64),
            Some(spec.seed as f64),
            "listing spec matches the manifest for {name}"
        );
        assert_eq!(row.get("epoch").and_then(Value::as_f64), Some(0.0));
        let expected_weight = manifest.tenant(name).unwrap().weight.unwrap_or(1);
        assert_eq!(
            row.get("weight").and_then(Value::as_f64),
            Some(expected_weight as f64)
        );
    }
    // A tenant key may read the listing too, but sees only its own row —
    // one tenant's corpus recipe and tuning are not another's business.
    let scoped = get_with_key(server.addr(), "/v1/corpora", ALPHA_KEY).unwrap();
    assert_eq!(scoped.status, 200);
    let scoped = parse(&scoped.body);
    let scoped = scoped.get("corpora").and_then(Value::as_array).unwrap();
    assert_eq!(scoped.len(), 1);
    assert_eq!(scoped[0].get("name").and_then(Value::as_str), Some("alpha"));
}

#[test]
fn auth_matrix_401_403_over_tcp() {
    let server = spawn_manifest_server(|_| {});
    let addr = server.addr();
    let (query, year) = tenant_query(&server, "alpha");
    let alpha_body = gen_body(&query, year, Some("alpha"));

    // Unauthenticated and unknown-key generates are 401 with a challenge.
    for key in [None, Some("wrong-key")] {
        let response =
            request_with_key(addr, "POST", "/v1/generate", Some(&alpha_body), key).unwrap();
        assert_eq!(response.status, 401, "key {key:?}");
        assert_eq!(response.header("www-authenticate"), Some("Bearer"));
    }
    // A tenant key generating against *another* tenant's corpus is 403.
    let cross = post_json_with_key(addr, "/v1/generate", &alpha_body, BETA_KEY).unwrap();
    assert_eq!(cross.status, 403);
    // Its own corpus — named or defaulted — is 200, billed to itself.
    let own = post_json_with_key(addr, "/v1/generate", &alpha_body, ALPHA_KEY).unwrap();
    assert_eq!(own.status, 200);
    assert_eq!(
        parse(&own.body).get("corpus").and_then(Value::as_str),
        Some("alpha")
    );
    let defaulted = post_json_with_key(
        addr,
        "/v1/generate",
        &gen_body(&query, year, None),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(defaulted.status, 200);
    assert_eq!(
        parse(&defaulted.body).get("corpus").and_then(Value::as_str),
        Some("alpha"),
        "an authenticated request without a corpus field defaults to its own tenant"
    );
    // The admin key may target any tenant.
    assert_eq!(
        post_json_with_key(addr, "/v1/generate", &alpha_body, ADMIN_KEY)
            .unwrap()
            .status,
        200
    );
    // An anonymous batch is a request-level 401.
    assert_eq!(
        client::post_json(addr, "/v1/batch", r#"{"requests": [{"query": "x"}]}"#)
            .unwrap()
            .status,
        401
    );

    // Admin endpoints: anonymous → 401, tenant key → 403, across every verb.
    let admin_calls: Vec<(&str, &str, Option<&str>)> = vec![
        ("PUT", "/v1/corpora/new", Some("{}")),
        ("DELETE", "/v1/corpora/alpha", None),
        ("POST", "/v1/corpora/alpha/refresh", None),
        ("PATCH", "/v1/admin/tenants/alpha", Some(r#"{"weight": 2}"#)),
        ("POST", "/v1/admin/reload", None),
    ];
    for (method, path, body) in &admin_calls {
        let anonymous = request_with_key(addr, method, path, *body, None).unwrap();
        assert_eq!(anonymous.status, 401, "{method} {path} anonymous");
        let tenant = request_with_key(addr, method, path, *body, Some(ALPHA_KEY)).unwrap();
        assert_eq!(tenant.status, 403, "{method} {path} with a tenant key");
    }
    // The corpora listing requires *some* key.
    assert_eq!(client::get(addr, "/v1/corpora").unwrap().status, 401);
    // Health and stats stay open for probes.
    assert_eq!(client::get(addr, "/v1/healthz").unwrap().status, 200);
    assert_eq!(client::get(addr, "/v1/stats").unwrap().status, 200);
    // Auth rejections never consumed queue budget or broke the server.
    assert_eq!(server.request_depth(), 0);
}

#[test]
fn lifecycle_put_generate_patch_delete_without_restart() {
    // The acceptance flow: a manifest-booted, authenticated server gains a
    // third corpus over the wire, serves it, retunes a tenant, and removes
    // a tenant — one server, no restarts.
    let server = spawn_manifest_server(|config| {
        config.workers = 2;
    });
    let addr = server.addr();

    // PUT a brand-new corpus spec (with its own key) and build it.
    let gamma_spec = r#"{
        "corpus": {"seed": 193, "scale": "small"},
        "weight": 3,
        "queue": 16,
        "api_keys": ["gamma-key"]
    }"#;
    let put = request_with_key(
        addr,
        "PUT",
        "/v1/corpora/gamma",
        Some(gamma_spec),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(put.status, 200, "{}", put.body);
    let put_value = parse(&put.body);
    assert_eq!(
        put_value.get("created").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(put_value.get("epoch").and_then(Value::as_f64), Some(0.0));

    // A PUT that tries to claim another tenant's (or the admin) key is a
    // 400 — the wire path enforces the same key rules as the manifest
    // instead of silently dropping the conflicting grant.
    for stolen in ["beta-key", "root-key", ""] {
        let body =
            format!(r#"{{"corpus": {{"seed": 5, "scale": "small"}}, "api_keys": [{stolen:?}]}}"#);
        let conflict = request_with_key(
            addr,
            "PUT",
            "/v1/corpora/thief",
            Some(&body),
            Some(ADMIN_KEY),
        )
        .unwrap();
        assert_eq!(conflict.status, 400, "key {stolen:?} must not be claimable");
    }

    // Generate against it with its freshly granted key.
    let (query, year) = tenant_query(&server, "gamma");
    let generated = post_json_with_key(
        addr,
        "/v1/generate",
        &gen_body(&query, year, Some("gamma")),
        "gamma-key",
    )
    .unwrap();
    assert_eq!(generated.status, 200, "{}", generated.body);
    let generated = parse(&generated.body);
    assert_eq!(
        generated.get("corpus").and_then(Value::as_str),
        Some("gamma")
    );
    assert!(
        !generated
            .get("result")
            .and_then(|r| r.get("reading_list"))
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "the PUT corpus actually serves"
    );

    // The listing now shows three tenants with gamma's tuning applied.
    let listing = parse(&get_with_key(addr, "/v1/corpora", ADMIN_KEY).unwrap().body);
    let rows = listing.get("corpora").and_then(Value::as_array).unwrap();
    let names: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names, ["alpha", "beta", "gamma"]);
    let gamma_row = &rows[2];
    assert_eq!(gamma_row.get("weight").and_then(Value::as_f64), Some(3.0));
    assert_eq!(gamma_row.get("queue").and_then(Value::as_f64), Some(16.0));

    // Re-PUT with a different seed: replacement, not creation — the epoch
    // bumps so stale cache entries can never resurface.
    let replaced = request_with_key(
        addr,
        "PUT",
        "/v1/corpora/gamma",
        Some(r#"{"corpus": {"seed": 194, "scale": "small"}, "api_keys": ["gamma-key"]}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(replaced.status, 200);
    let replaced = parse(&replaced.body);
    assert_eq!(
        replaced.get("created").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(replaced.get("epoch").and_then(Value::as_f64), Some(1.0));

    // PATCH a live tenant's weight and bound; the change is visible
    // immediately in the listing (behavioural DRR coverage lives in the
    // fair-queue unit suite and the retune-under-load test below).
    let patch = request_with_key(
        addr,
        "PATCH",
        "/v1/admin/tenants/beta",
        Some(r#"{"weight": 5, "queue": 11}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(patch.status, 200);
    let patched = parse(&patch.body);
    assert_eq!(patched.get("weight").and_then(Value::as_f64), Some(5.0));
    assert_eq!(patched.get("queue").and_then(Value::as_f64), Some(11.0));
    let listing = parse(&get_with_key(addr, "/v1/corpora", ADMIN_KEY).unwrap().body);
    let beta_row = &listing.get("corpora").and_then(Value::as_array).unwrap()[1];
    assert_eq!(beta_row.get("weight").and_then(Value::as_f64), Some(5.0));
    assert_eq!(beta_row.get("queue").and_then(Value::as_f64), Some(11.0));
    // Patching an unknown tenant is a 404; garbage tuning is a 400.
    assert_eq!(
        request_with_key(
            addr,
            "PATCH",
            "/v1/admin/tenants/ghost",
            Some(r#"{"weight": 2}"#),
            Some(ADMIN_KEY)
        )
        .unwrap()
        .status,
        404
    );
    assert_eq!(
        request_with_key(
            addr,
            "PATCH",
            "/v1/admin/tenants/beta",
            Some(r#"{"weight": 0}"#),
            Some(ADMIN_KEY)
        )
        .unwrap()
        .status,
        400
    );

    // DELETE the tenant: subsequent generates are 404 (admin) and its key
    // is revoked outright (401).
    let deleted =
        request_with_key(addr, "DELETE", "/v1/corpora/gamma", None, Some(ADMIN_KEY)).unwrap();
    assert_eq!(deleted.status, 200);
    assert_eq!(
        request_with_key(addr, "DELETE", "/v1/corpora/gamma", None, Some(ADMIN_KEY))
            .unwrap()
            .status,
        404,
        "double delete"
    );
    let after = post_json_with_key(
        addr,
        "/v1/generate",
        &gen_body(&query, year, Some("gamma")),
        ADMIN_KEY,
    )
    .unwrap();
    assert_eq!(after.status, 404);
    let revoked = post_json_with_key(
        addr,
        "/v1/generate",
        &gen_body(&query, year, Some("gamma")),
        "gamma-key",
    )
    .unwrap();
    assert_eq!(revoked.status, 401, "deleted tenant's key is revoked");
    // alpha and beta were never disturbed.
    let (alpha_query, alpha_year) = tenant_query(&server, "alpha");
    assert_eq!(
        post_json_with_key(
            addr,
            "/v1/generate",
            &gen_body(&alpha_query, alpha_year, None),
            ALPHA_KEY
        )
        .unwrap()
        .status,
        200
    );
}

#[test]
fn put_replace_evicts_exactly_the_replaced_tenants_cache() {
    let server = spawn_manifest_server(|_| {});
    let addr = server.addr();
    let (alpha_query, alpha_year) = tenant_query(&server, "alpha");
    let (beta_query, beta_year) = tenant_query(&server, "beta");
    let alpha_body = gen_body(&alpha_query, alpha_year, Some("alpha"));
    let beta_body = gen_body(&beta_query, beta_year, Some("beta"));

    // Populate both tenants' cache entries over the wire.
    for (body, key) in [(&alpha_body, ALPHA_KEY), (&beta_body, BETA_KEY)] {
        let first = post_json_with_key(addr, "/v1/generate", body, key).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(
            parse(&first.body).get("cached").and_then(Value::as_bool),
            Some(false)
        );
        let repeat = post_json_with_key(addr, "/v1/generate", body, key).unwrap();
        assert_eq!(
            parse(&repeat.body).get("cached").and_then(Value::as_bool),
            Some(true)
        );
    }

    // Replace alpha's corpus via PUT.
    let put = request_with_key(
        addr,
        "PUT",
        "/v1/corpora/alpha",
        Some(r#"{"corpus": {"seed": 9161, "scale": "small"}, "api_keys": ["alpha-key"]}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(put.status, 200, "{}", put.body);

    // Exactly alpha's entries are gone: the listing says so, beta still
    // hits its cache, and alpha recomputes against the new corpus.
    let listing = parse(&get_with_key(addr, "/v1/corpora", ADMIN_KEY).unwrap().body);
    let rows = listing.get("corpora").and_then(Value::as_array).unwrap();
    assert_eq!(rows[0].get("name").and_then(Value::as_str), Some("alpha"));
    assert_eq!(
        rows[0].get("cached_entries").and_then(Value::as_f64),
        Some(0.0)
    );
    assert_eq!(rows[0].get("epoch").and_then(Value::as_f64), Some(1.0));
    assert_eq!(rows[1].get("name").and_then(Value::as_str), Some("beta"));
    assert_eq!(
        rows[1].get("cached_entries").and_then(Value::as_f64),
        Some(1.0)
    );
    let beta_hit = post_json_with_key(addr, "/v1/generate", &beta_body, BETA_KEY).unwrap();
    assert_eq!(
        parse(&beta_hit.body).get("cached").and_then(Value::as_bool),
        Some(true)
    );
    let alpha_fresh = post_json_with_key(addr, "/v1/generate", &alpha_body, ALPHA_KEY).unwrap();
    assert_eq!(alpha_fresh.status, 200);
    assert_eq!(
        parse(&alpha_fresh.body)
            .get("cached")
            .and_then(Value::as_bool),
        Some(false),
        "the replaced corpus must not serve pre-replacement results"
    );
}

#[test]
fn live_weight_retune_shifts_the_drr_share_under_load() {
    // One compute worker, four parked requests per tenant. The manifest
    // gives beta weight 2 and alpha weight 1, so beta's backlog would
    // normally drain first; a live PATCH raising alpha to weight 6 must
    // flip that — alpha's last response lands before beta's.
    let server = spawn_manifest_server(|config| {
        config.workers = 1;
        config.queue_capacity = 64;
    });
    let addr = server.addr();

    // Distinct queries per request so the result cache never short-circuits
    // the pipeline.
    let alpha_queries: Vec<(String, u16)> = {
        let artifacts = server.registry().artifacts("alpha").unwrap();
        artifacts
            .corpus()
            .survey_bank()
            .iter()
            .take(4)
            .map(|s| (s.query.clone(), s.year))
            .collect()
    };
    let beta_queries: Vec<(String, u16)> = {
        let artifacts = server.registry().artifacts("beta").unwrap();
        artifacts
            .corpus()
            .survey_bank()
            .iter()
            .take(4)
            .map(|s| (s.query.clone(), s.year))
            .collect()
    };

    // Plug the worker so the eight requests park in the queue while the
    // retune happens.
    let plug = {
        let (query, _) = alpha_queries[0].clone();
        std::thread::spawn(move || {
            let response =
                post_json_with_key(addr, "/v1/generate", &slow_body(&query, "alpha"), ALPHA_KEY);
            assert_eq!(response.unwrap().status, 200);
        })
    };
    wait_worker_busy(&server, "alpha");

    // Retune alpha while the server is under load.
    let patch = request_with_key(
        addr,
        "PATCH",
        "/v1/admin/tenants/alpha",
        Some(r#"{"weight": 6}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(patch.status, 200);

    // Park 4 + 4 requests (interleaved submission), each recording when its
    // response arrived.
    let mut handles = Vec::new();
    for i in 0..4 {
        for (tenant, key, queries) in [
            ("alpha", ALPHA_KEY, &alpha_queries),
            ("beta", BETA_KEY, &beta_queries),
        ] {
            let (query, year) = queries[i].clone();
            let body = gen_body(&query, year, Some(tenant));
            let key = key.to_string();
            let tenant = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                let response = post_json_with_key(addr, "/v1/generate", &body, &key).unwrap();
                assert_eq!(response.status, 200, "{tenant}: {}", response.body);
                (tenant, Instant::now())
            }));
        }
    }
    let completions: Vec<(String, Instant)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    plug.join().unwrap();

    let last = |tenant: &str| {
        completions
            .iter()
            .filter(|(name, _)| name == tenant)
            .map(|&(_, at)| at)
            .max()
            .unwrap()
    };
    assert!(
        last("alpha") < last("beta"),
        "after the live retune (alpha 6 vs beta 2), alpha's backlog must drain first"
    );
    // The retuned weight is what the stats report, too.
    let stats = parse(&client::get(addr, "/v1/stats").unwrap().body);
    let alpha_weight = stats
        .get("queue")
        .and_then(|q| q.get("tenants"))
        .and_then(|t| t.get("alpha"))
        .and_then(|a| a.get("weight"))
        .and_then(Value::as_f64);
    assert_eq!(alpha_weight, Some(6.0));
}

#[test]
fn batch_items_bill_their_own_tenants_with_partial_429s() {
    // Part 1 (no load): per-item routing and per-item failures under auth.
    let server = spawn_manifest_server(|_| {});
    let addr = server.addr();
    let (alpha_query, alpha_year) = tenant_query(&server, "alpha");
    let (beta_query, beta_year) = tenant_query(&server, "beta");
    let batch = format!(
        r#"{{"requests": [
            {{"query": {alpha_query:?}, "max_year": {alpha_year}, "top_k": 5, "corpus": "alpha"}},
            {{"query": {beta_query:?}, "max_year": {beta_year}, "top_k": 5, "corpus": "beta"}},
            {{"query": "x", "corpus": "ghost"}},
            {{"query": "x", "variant": "bogus"}}
        ]}}"#
    );
    // Admin: mixed-corpus batch runs each item against its own tenant.
    let response = post_json_with_key(addr, "/v1/batch", &batch, ADMIN_KEY).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let results = parse(&response.body);
    let results = results.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(
        results[0].get("corpus").and_then(Value::as_str),
        Some("alpha")
    );
    assert_eq!(
        results[1].get("corpus").and_then(Value::as_str),
        Some("beta")
    );
    assert_eq!(
        results[2].get("status").and_then(Value::as_f64),
        Some(404.0)
    );
    assert_eq!(
        results[3].get("status").and_then(Value::as_f64),
        Some(400.0)
    );
    // A tenant key: items naming other tenants fail per-item with 403, its
    // own items still run.
    let response = post_json_with_key(addr, "/v1/batch", &batch, ALPHA_KEY).unwrap();
    assert_eq!(response.status, 200);
    let results = parse(&response.body);
    let results = results.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(
        results[0].get("corpus").and_then(Value::as_str),
        Some("alpha")
    );
    assert_eq!(
        results[1].get("status").and_then(Value::as_f64),
        Some(403.0)
    );

    // Part 2 (under load): a tenant at its queue bound loses exactly the
    // overflow items to per-item 429s — the batch itself still answers 200.
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
        config.tenant_queue_capacity = 1;
        config.queue_capacity = 32;
    });
    let addr = server.addr();
    let queries = common::demo_queries(2);
    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let response = client::post_json(addr, "/v1/generate", &slow_body(&plug_query, "default"));
        assert_eq!(response.unwrap().status, 200);
    });
    wait_worker_busy(&server, "default");
    // Four same-tenant items against a bound of 1, admitted in one loop
    // while the worker is provably busy: exactly one fits, three throttle.
    let (query, year) = queries[1].clone();
    let item = gen_body(&query, year, None);
    let burst = format!(r#"{{"requests": [{item}, {item}, {item}, {item}]}}"#);
    let response = client::post_json(addr, "/v1/batch", &burst).unwrap();
    assert_eq!(
        response.status, 200,
        "partial throttling keeps the batch a 200"
    );
    let results = parse(&response.body);
    let results = results.get("results").and_then(Value::as_array).unwrap();
    let throttled: Vec<&Value> = results
        .iter()
        .filter(|r| r.get("status").and_then(Value::as_f64) == Some(429.0))
        .collect();
    let served = results
        .iter()
        .filter(|r| r.get("corpus").and_then(Value::as_str) == Some("default"))
        .count();
    assert_eq!(
        throttled.len(),
        3,
        "bound 1 admits exactly one of four items"
    );
    assert_eq!(served, 1);
    assert!(
        throttled[0]
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("capacity"),
        "throttled items say why"
    );
    plug.join().unwrap();
    let stats = server.stats();
    assert_eq!(stats.throttled, 3, "per-item 429s are counted per item");
}

#[test]
fn mid_compute_hangup_cancels_queued_work() {
    // PR 4 follow-up: a connection in `ComputeInFlight` stays in the poll
    // set watching for POLLHUP/POLLERR. A client that aborts mid-compute
    // (RST — here provoked by closing with the server's unread interim
    // `100 Continue` in its receive buffer) must have its queued work
    // cancelled before it runs, and the reply dropped without a write.
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
    });
    let addr = server.addr();
    let queries = common::demo_queries(2);

    // Plug the single worker.
    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let response = client::post_json(addr, "/v1/generate", &slow_body(&plug_query, "default"));
        assert_eq!(response.unwrap().status, 200);
    });
    wait_worker_busy(&server, "default");

    // A raw client sends a full request (asking for `100 Continue`), waits
    // until it is queued behind the plug, then vanishes.
    let (query, year) = queries[1].clone();
    let body = gen_body(&query, year, None);
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST /v1/generate HTTP/1.1\r\nhost: t\r\nexpect: 100-continue\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.request_depth() == 0 {
        assert!(Instant::now() < deadline, "request never queued");
        std::thread::yield_now();
    }
    // Close without reading: the unread `100 Continue` turns the close
    // into an RST, which is what POLLHUP/POLLERR watching detects.
    drop(stream);

    // The plug finishes; the abandoned job is skipped (not computed) and
    // its connection slot drains away.
    plug.join().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "abandoned connection never closed: {} open",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(
        stats.pipeline.requests, 1,
        "only the plug ran the pipeline — the abandoned request was cancelled before compute"
    );
    assert_eq!(stats.server_errors, 0, "no doomed write, no 5xx");
    // The server is unharmed.
    assert_eq!(client::get(addr, "/v1/healthz").unwrap().status, 200);
}

#[test]
fn mid_compute_half_close_still_gets_its_reply() {
    // The other half of the hangup fix: a client that writes a complete
    // request and then `shutdown(SHUT_WR)`s is half-closing gracefully —
    // it is still reading. POLLRDHUP fires for that FIN exactly like for
    // an abort, so the server must probe the socket before deciding:
    // end-of-stream with the request already consumed means the reply is
    // still owed, not that the work should be cancelled.
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
    });
    let addr = server.addr();
    let queries = common::demo_queries(2);

    // Plug the single worker so the half-closing request is provably in
    // `ComputeInFlight` when its FIN arrives.
    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let response = client::post_json(addr, "/v1/generate", &slow_body(&plug_query, "default"));
        assert_eq!(response.unwrap().status, 200);
    });
    wait_worker_busy(&server, "default");

    let (query, year) = queries[1].clone();
    let body = gen_body(&query, year, None);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.request_depth() == 0 {
        assert!(Instant::now() < deadline, "request never queued");
        std::thread::yield_now();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Give the event loop time to see the FIN while the worker is still
    // plugged — the regression this guards against flipped the cancel flag
    // right here and the reply never came.
    std::thread::sleep(Duration::from_millis(50));
    let response = client::read_response(&mut stream, &mut Vec::new()).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    plug.join().unwrap();

    let stats = server.stats();
    assert_eq!(stats.pipeline.requests, 2, "both requests computed");
    let tenants = parse(&client::get(addr, "/v1/stats").unwrap().body);
    let row = tenants
        .get("tenants")
        .and_then(|t| t.get("default"))
        .expect("default tenant metrics row");
    assert_eq!(row.get("cancelled").and_then(Value::as_f64), Some(0.0));
    assert_eq!(row.get("shed").and_then(Value::as_f64), Some(0.0));
}

#[test]
fn expired_deadlines_shed_queued_work_with_a_503() {
    let server = spawn_with(demo_registry_without_cache(), |config| {
        config.workers = 1;
    });
    let addr = server.addr();
    let queries = common::demo_queries(2);
    let (plug_query, _) = queries[0].clone();
    let plug = std::thread::spawn(move || {
        let response = client::post_json(addr, "/v1/generate", &slow_body(&plug_query, "default"));
        assert_eq!(response.unwrap().status, 200);
    });
    wait_worker_busy(&server, "default");

    // A 1 ms budget behind a plug that takes far longer: by the time the
    // worker reaches this request its deadline is blown, so the worker
    // sheds it — 503 plus retry-after — instead of computing a result the
    // client has already given up on.
    let (query, year) = queries[1].clone();
    let response = client::request_with(
        addr,
        "POST",
        "/v1/generate",
        Some(&gen_body(&query, year, None)),
        &[("x-rpg-deadline-ms", "1")],
    )
    .unwrap();
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(
        response.header("retry-after").is_some(),
        "sheds tell the client when to come back"
    );
    plug.join().unwrap();

    let stats = server.stats();
    assert_eq!(
        stats.pipeline.requests, 1,
        "the shed request never reached the pipeline"
    );
    // The tenant metrics expose the shed and the plug's recorded latency
    // (the record lands just after the reply is queued, hence the poll).
    let deadline = Instant::now() + Duration::from_secs(5);
    let row = loop {
        let tenants = parse(&client::get(addr, "/v1/stats").unwrap().body);
        let row = tenants
            .get("tenants")
            .and_then(|t| t.get("default"))
            .cloned()
            .expect("default tenant metrics row");
        let count = row
            .get("latency")
            .and_then(|l| l.get("count"))
            .and_then(Value::as_f64);
        if count == Some(1.0) {
            break row;
        }
        assert!(Instant::now() < deadline, "latency sample never recorded");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(row.get("shed").and_then(Value::as_f64), Some(1.0));
    assert_eq!(row.get("cancelled").and_then(Value::as_f64), Some(0.0));
    let latency = row.get("latency").expect("latency object");
    for quantile in ["p50", "p99", "p999"] {
        let value = latency
            .get(quantile)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{quantile} missing: {latency:?}"));
        assert!(value > 0.0, "{quantile} = {value}");
    }
}

#[test]
fn tenant_patch_retunes_inflight_and_deadline_live() {
    let server = spawn_manifest_server(|config| {
        config.workers = 2;
    });
    let addr = server.addr();

    let response = request_with_key(
        addr,
        "PATCH",
        "/v1/admin/tenants/alpha",
        Some(r#"{"inflight": 1, "deadline_ms": 750}"#),
        Some(ADMIN_KEY),
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let body = parse(&response.body);
    assert_eq!(body.get("inflight").and_then(Value::as_f64), Some(1.0));
    assert_eq!(body.get("deadline_ms").and_then(Value::as_f64), Some(750.0));

    // One served request creates alpha's lane; the queue stats then
    // reflect the new cap (and an idle lane).
    let (query, year) = tenant_query(&server, "alpha");
    let served = post_json_with_key(
        addr,
        "/v1/generate",
        &gen_body(&query, year, Some("alpha")),
        ALPHA_KEY,
    )
    .unwrap();
    assert_eq!(served.status, 200, "{}", served.body);
    // The worker releases its in-flight charge just after queueing the
    // reply, so the idle-lane view can trail the response by a beat.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = parse(&get_with_key(addr, "/v1/stats", ADMIN_KEY).unwrap().body);
        let alpha = stats
            .get("queue")
            .and_then(|q| q.get("tenants"))
            .and_then(|t| t.get("alpha"))
            .expect("alpha queue row")
            .clone();
        assert_eq!(alpha.get("inflight").and_then(Value::as_f64), Some(1.0));
        if alpha.get("in_flight").and_then(Value::as_f64) == Some(0.0) {
            break;
        }
        assert!(Instant::now() < deadline, "in-flight charge never released");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Zero caps and empty patches are rejected wholesale.
    for bad in [r#"{"inflight": 0}"#, r#"{"deadline_ms": 0}"#, r#"{}"#] {
        let response = request_with_key(
            addr,
            "PATCH",
            "/v1/admin/tenants/alpha",
            Some(bad),
            Some(ADMIN_KEY),
        )
        .unwrap();
        assert_eq!(response.status, 400, "{bad}: {}", response.body);
    }
}

#[test]
fn reload_applies_the_manifest_live_and_atomically() {
    // A server whose manifest lives in a file: reload is a no-op until the
    // file changes, then applies exactly the diff — created tenants start
    // serving with their keys, removed tenants 404 and their keys die.
    let path = std::env::temp_dir().join(format!(
        "rpg-control-plane-manifest-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, demo_manifest_json()).unwrap();
    let manifest = Manifest::from_json(&demo_manifest_json()).unwrap();
    let registry = Arc::new(CorpusRegistry::new());
    registry.apply_manifest(&manifest).unwrap();
    let manifest_path = path.to_string_lossy().into_owned();
    let server = spawn_with(registry, move |config| {
        *config = config.clone().with_manifest(&manifest);
        config.auth_enabled = true;
        config.manifest_path = Some(manifest_path);
    });
    let addr = server.addr();

    // Unchanged file → no-op diff.
    let noop = request_with_key(addr, "POST", "/v1/admin/reload", None, Some(ADMIN_KEY)).unwrap();
    assert_eq!(noop.status, 200, "{}", noop.body);
    let diff = parse(&noop.body);
    assert_eq!(diff.get("created").and_then(Value::as_array), Some(&[][..]));
    assert_eq!(diff.get("removed").and_then(Value::as_array), Some(&[][..]));
    assert_eq!(
        diff.get("unchanged")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(2)
    );

    // Rewrite: alpha reseeded, beta gone, gamma new.
    std::fs::write(
        &path,
        r#"{
            "admin_keys": ["root-key"],
            "tenants": {
                "alpha": {
                    "corpus": {"seed": 9161, "scale": "small"},
                    "api_keys": ["alpha-key"]
                },
                "gamma": {
                    "corpus": {"seed": 193, "scale": "small"},
                    "api_keys": ["gamma-key"]
                }
            }
        }"#,
    )
    .unwrap();
    let reloaded =
        request_with_key(addr, "POST", "/v1/admin/reload", None, Some(ADMIN_KEY)).unwrap();
    assert_eq!(reloaded.status, 200, "{}", reloaded.body);
    let diff = parse(&reloaded.body);
    let names = |key: &str| -> Vec<String> {
        diff.get(key)
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect()
    };
    assert_eq!(names("created"), ["gamma"]);
    assert_eq!(names("replaced"), ["alpha"]);
    assert_eq!(names("removed"), ["beta"]);

    // The new tenant serves with its manifest key; the removed one is gone
    // and its key is dead.
    let (query, year) = tenant_query(&server, "gamma");
    assert_eq!(
        post_json_with_key(
            addr,
            "/v1/generate",
            &gen_body(&query, year, Some("gamma")),
            "gamma-key"
        )
        .unwrap()
        .status,
        200
    );
    assert_eq!(
        post_json_with_key(
            addr,
            "/v1/generate",
            &gen_body(&query, year, Some("beta")),
            ADMIN_KEY
        )
        .unwrap()
        .status,
        404
    );
    assert_eq!(
        post_json_with_key(
            addr,
            "/v1/generate",
            &gen_body(&query, year, Some("beta")),
            BETA_KEY
        )
        .unwrap()
        .status,
        401,
        "a removed tenant's key no longer authenticates"
    );

    // A broken manifest file fails the reload and changes nothing.
    std::fs::write(&path, "{ not json").unwrap();
    let broken = request_with_key(addr, "POST", "/v1/admin/reload", None, Some(ADMIN_KEY)).unwrap();
    assert_eq!(broken.status, 400);
    assert_eq!(
        post_json_with_key(
            addr,
            "/v1/generate",
            &gen_body(&query, year, Some("gamma")),
            "gamma-key"
        )
        .unwrap()
        .status,
        200,
        "a failed reload leaves the tenant set serving"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reload_without_a_manifest_is_a_409() {
    // An auth-off server spawned without a manifest path has nothing to
    // reload; the endpoint says so instead of guessing.
    let server = spawn_with(common::demo_registry(), |config| {
        config.workers = 1;
    });
    let response = client::request(server.addr(), "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(response.status, 409);
}
