//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of rand's API the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(..)` over integer ranges — backed by xoshiro256**
//! seeded through SplitMix64. The streams differ from upstream rand's
//! `StdRng` (ChaCha12), but every consumer in this workspace only requires
//! determinism given a seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample of type `T` (only `f64` in `[0, 1)` and the integer
    /// primitives are supported).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable uniformly "from the standard distribution".
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one sample from the range; panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.gen_range(0..5usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let x = rng.gen_range(10..=12u16);
            assert!((10..=12).contains(&x));
        }
    }
}
