//! Offline stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be vendored reasonably (it pulls in a tree of
//! transitive dependencies), so this shim implements exactly the surface
//! the workspace's `#[cfg(feature = "proptests")]` modules use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * integer range strategies (`0u32..15`), string strategies from a small
//!   regex subset (`"[a-z ]{0,60}"`, groups, `.`), tuple strategies, and
//!   `prop::collection::vec(element, size_range)`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest (acceptable for this workspace): no
//! shrinking — a failing case panics with the seed-derived case index in
//! the standard assert message, and the deterministic per-test RNG means
//! the failure reproduces by rerunning the test; strategies are sampled,
//! not explored, so `cases` controls coverage exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f` (the `prop_map` combinator of real
    /// proptest, minus shrinking).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value (real proptest's
/// `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy behind [`prop_oneof!`]: a weighted choice between
/// same-typed strategies.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(weight, _)| *weight).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0u32..self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.sample(rng);
            }
            pick -= *weight;
        }
        unreachable!("weighted pick is within the total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// String strategies: a `&str` pattern is a tiny regex subset.
///
/// Supported syntax: literal characters, `.` (printable ASCII), character
/// classes `[a-z 0-9]` (ranges and single chars, no negation), groups
/// `( ... )`, and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the
/// unbounded ones are capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let nodes = regex::parse(self);
        let mut out = String::new();
        regex::generate(&nodes, rng, &mut out);
        out
    }
}

mod regex {
    use rand::rngs::StdRng;
    use rand::Rng;

    pub(crate) enum Node {
        Literal(char),
        Any,
        Class(Vec<char>),
        Group(Vec<Quantified>),
    }

    pub(crate) struct Quantified {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Cap for `*`, `+` and `?`-style unbounded repetition.
    const UNBOUNDED_CAP: u32 = 8;

    pub(crate) fn parse(pattern: &str) -> Vec<Quantified> {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_seq(&mut chars, pattern, None);
        assert!(
            chars.next().is_none(),
            "unbalanced ')' in pattern {pattern:?}"
        );
        nodes
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
        terminator: Option<char>,
    ) -> Vec<Quantified> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            if Some(c) == terminator {
                break;
            }
            chars.next();
            let node = match c {
                '.' => Node::Any,
                '[' => Node::Class(parse_class(chars, pattern)),
                '(' => {
                    let inner = parse_seq(chars, pattern, Some(')'));
                    assert_eq!(
                        chars.next(),
                        Some(')'),
                        "unterminated group in pattern {pattern:?}"
                    );
                    Node::Group(inner)
                }
                '\\' => Node::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
                ),
                other => Node::Literal(other),
            };
            let (min, max) = parse_quantifier(chars, pattern);
            nodes.push(Quantified { node, min, max });
        }
        nodes
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<char> {
        let mut members = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next();
                match lookahead.peek() {
                    Some(&end) if end != ']' => {
                        chars.next();
                        chars.next();
                        assert!(c <= end, "inverted range in class of pattern {pattern:?}");
                        for member in c..=end {
                            members.push(member);
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            members.push(c);
        }
        assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
        members
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (u32, u32) {
        match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => panic!("unterminated quantifier in pattern {pattern:?}"),
                    }
                }
                let parse_bound = |s: &str| -> u32 {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier bound {s:?} in {pattern:?}"))
                };
                match spec.split_once(',') {
                    None => {
                        let n = parse_bound(&spec);
                        (n, n)
                    }
                    Some((min, max)) => (parse_bound(min), parse_bound(max)),
                }
            }
            _ => (1, 1),
        }
    }

    /// Printable ASCII plus a few multi-byte characters so `.` exercises
    /// UTF-8 handling downstream.
    const ANY_EXTRA: [char; 6] = ['é', 'ß', 'λ', '中', '✓', '𝕏'];

    fn sample_any(rng: &mut StdRng) -> char {
        // 1-in-16 chance of a non-ASCII character.
        if rng.gen_range(0u32..16) == 0 {
            ANY_EXTRA[rng.gen_range(0usize..ANY_EXTRA.len())]
        } else {
            char::from(rng.gen_range(0x20u8..0x7F))
        }
    }

    pub(crate) fn generate(nodes: &[Quantified], rng: &mut StdRng, out: &mut String) {
        for quantified in nodes {
            let count = if quantified.min == quantified.max {
                quantified.min
            } else {
                rng.gen_range(quantified.min..=quantified.max)
            };
            for _ in 0..count {
                match &quantified.node {
                    Node::Literal(c) => out.push(*c),
                    Node::Any => out.push(sample_any(rng)),
                    Node::Class(members) => {
                        out.push(members[rng.gen_range(0usize..members.len())]);
                    }
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of an element strategy, with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 1..20)`: vectors of 1 to 19 sampled elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for vec strategy");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG for one test case.
///
/// Seeded from the test name and case index, so every run of a test
/// explores the same inputs (reproducible failures) while different tests
/// explore different streams.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish() ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The glob-import surface the gated test modules use:
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case, and the body runs once per case.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __proptest_case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_rng(stringify!($name), __proptest_case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Weighted choice between same-typed strategies: `w => strategy` arms, or
/// bare arms that all weigh 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, Box::new($strategy) as _)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, Box::new($strategy) as _)),+])
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Expands to a `continue` of the per-case loop, so it must be used at the
/// top level of the property body (which is how this workspace uses it),
/// not inside a nested loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Property-test assertion (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_rng("ranges", 0);
        for _ in 0..200 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0usize..=5).sample(&mut rng);
            assert!(y <= 5);
        }
    }

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut rng = crate::test_rng("strings", 1);
        for _ in 0..100 {
            let word = "[a-z]{3,8}".sample(&mut rng);
            assert!((3..=8).contains(&word.chars().count()), "{word:?}");
            assert!(word.chars().all(|c| c.is_ascii_lowercase()));

            let phrase = "[a-z]{3,6}( [a-z]{3,6}){0,2}".sample(&mut rng);
            let words: Vec<&str> = phrase.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{phrase:?}");
            for word in words {
                assert!((3..=6).contains(&word.len()), "{phrase:?}");
            }

            let spaced = "[a-z ]{0,10}".sample(&mut rng);
            assert!(spaced.chars().count() <= 10);
            assert!(spaced.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));

            let anything = ".{0,20}".sample(&mut rng);
            assert!(anything.chars().count() <= 20);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::test_rng("vecs", 2);
        for _ in 0..100 {
            let pairs = prop::collection::vec((0u32..10, 0u32..10), 1..5).sample(&mut rng);
            assert!((1..=4).contains(&pairs.len()));
            for (a, b) in pairs {
                assert!(a < 10 && b < 10);
            }
            let triple = (0u8..2, 5i32..6, 0usize..100).sample(&mut rng);
            assert!(triple.0 < 2);
            assert_eq!(triple.1, 5);
        }
    }

    #[test]
    fn rng_streams_are_deterministic_per_test_and_case() {
        use rand::Rng;
        let a: u64 = crate::test_rng("t", 0).gen();
        let b: u64 = crate::test_rng("t", 0).gen();
        let c: u64 = crate::test_rng("t", 1).gen();
        let d: u64 = crate::test_rng("u", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn oneof_map_and_just_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Pick {
            Fixed,
            Small(u32),
            Big(u32),
        }
        let strategy = prop_oneof![
            1 => Just(Pick::Fixed),
            4 => (0u32..10).prop_map(Pick::Small),
            4 => (100u32..110).prop_map(Pick::Big),
        ];
        let mut rng = crate::test_rng("oneof", 3);
        let mut seen = [false; 3];
        for _ in 0..300 {
            match strategy.sample(&mut rng) {
                Pick::Fixed => seen[0] = true,
                Pick::Small(x) => {
                    assert!(x < 10);
                    seen[1] = true;
                }
                Pick::Big(x) => {
                    assert!((100..110).contains(&x));
                    seen[2] = true;
                }
            }
        }
        assert_eq!(seen, [true; 3], "every arm of the union is reachable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: bindings, config, and assertions all wire up.
        #[test]
        fn macro_samples_and_asserts(a in 0u32..50, b in 0u32..50, s in "[a-c]{1,4}") {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(s.len(), 0);
        }
    }
}
