//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the benches use —
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple wall-clock measurement loop: a short warm-up sizes the per-sample
//! iteration count so each sample runs ≥ ~5 ms, then `sample_size` samples
//! are taken and the min/mean/max per-iteration times are printed.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 10;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the routine under timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up: one iteration to estimate the routine cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let estimate = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        sample_size,
        iters_per_sample,
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Benchmark binaries receive harness flags (e.g. `--bench`);
            // this simple harness runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
