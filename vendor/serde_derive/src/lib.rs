//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on top of `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline). Supports the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialise transparently, wider tuples as arrays),
//! * unit structs,
//! * enums whose variants all carry no data (serialised as their name).
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut keyword = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip an optional restriction group `pub(crate)`.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        keyword = Some(word);
                        break;
                    }
                    _ => return Err(format!("unsupported item keyword `{word}`")),
                }
            }
            _ => return Err("unexpected token before item keyword".to_string()),
        }
    }
    let keyword = keyword.ok_or("no struct/enum keyword found")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing item name".to_string()),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the vendored serde"
            ));
        }
    }

    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Shape::Named(named_fields(g.stream())?)
            } else {
                Shape::UnitEnum(enum_variants(g.stream())?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if keyword == "enum" {
                return Err("unexpected parentheses after enum name".to_string());
            }
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        None if keyword == "struct" => Shape::Unit,
        _ => return Err(format!("unsupported body for `{name}`")),
    };
    Ok(Item { name, shape })
}

/// Splits a brace group of named fields into field names.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => return Err(format!("unexpected token `{other}` in field list")),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("missing `:` after field `{name}`")),
        }
        // Skip the type: consume until a top-level comma (angle-bracket depth
        // tracked so `HashMap<K, V>` commas don't split the field).
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Collects the unit variants of an enum body; errors on data variants.
fn enum_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    return Err(format!(
                        "variant `{variant}` carries data; the vendored serde only derives unit enums"
                    ));
                }
                // Skip an optional discriminant `= expr`.
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '=' {
                        for tt in tokens.by_ref() {
                            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                        }
                    }
                }
                variants.push(variant);
            }
            other => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::value::Value::String({v:?}.to_string()),\n")
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field_or_null({f:?}))?,\n")
                })
                .collect();
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::value::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({inits})),\n\
                     other => Err(::serde::value::DeError::expected({expect:?}, other)),\n\
                 }}",
                inits = inits.join(", "),
                expect = format!("{n}-element array"),
            )
        }
        Shape::Unit => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::value::Value::String(s) => match s.as_str() {{\n\
                         {arms}\
                         other => Err(::serde::value::DeError::new(format!(\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     other => Err(::serde::value::DeError::expected(\"string\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}
