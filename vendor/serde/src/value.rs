//! The JSON-like data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A JSON value tree.
///
/// Objects preserve insertion order as a `Vec` of pairs (the derive macro
/// pushes fields in declaration order, which keeps output deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an object field, treating a missing key as `null` (so that
    /// `Option` fields tolerate omitted keys).
    pub fn field_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Formats a number the way the JSON emitter does: integral values without a
/// fractional part, everything else via the shortest round-trip rendering.
pub fn format_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:?}")
    }
}

/// A deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with an explicit message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
