//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate provides the tiny slice of serde's surface the
//! workspace actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and unit enums, routed through a JSON-like [`value::Value`] data
//! model that the sibling `serde_json` shim renders and parses.
//!
//! Differences from real serde (acceptable for this repository):
//!
//! * Serialisation goes through an intermediate [`value::Value`] tree rather
//!   than a streaming serializer.
//! * Integers are carried as `f64`, so values beyond 2^53 lose precision.
//! * Map keys are stringified; non-scalar keys are unsupported.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use value::{DeError, Value};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Mirrors serde's humantime-free default closely enough for this
        // workspace: an object with integer seconds and nanoseconds.
        Value::Object(vec![
            ("secs".to_string(), Value::Number(self.as_secs() as f64)),
            (
                "nanos".to_string(),
                Value::Number(self.subsec_nanos() as f64),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.field_or_null("secs"))?;
        let nanos = u32::from_value(v.field_or_null("nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-element array, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Renders a serialised scalar into a JSON object key.
fn value_to_key(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Number(n) => value::format_number(n),
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
        // Composite keys cannot be represented as JSON object keys; the
        // workspace never uses them. Fall back to the debug rendering so the
        // failure is at least visible in the output.
        other => format!("{other:?}"),
    }
}

/// Reconstructs a key type from a JSON object key, trying the numeric
/// interpretation first (for id-like keys), then the string one.
fn key_to_value<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(n) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Number(n)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::String(key.to_string()))
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut fields: Vec<(String, Value)> = entries
        .map(|(k, v)| (value_to_key(k.to_value()), v.to_value()))
        .collect();
    // HashMap iteration order is nondeterministic; sort so output is stable.
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(fields)
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((key_to_value::<K>(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((key_to_value::<K>(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
