//! Shim-level parse benchmark: pins the cost of deserialising the kind of
//! large request body the HTTP server sees, so a regression back to the
//! quadratic per-char string loop (a ~400 KB body used to take ~2 s; the
//! byte-slice scanner parses it in single-digit milliseconds) is caught at
//! the shim, not three layers up in an HTTP latency mystery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use serde_json::Value;

/// A ~440 KB generate-shaped body: one long query string (the string
/// parser's hot path) plus a wide numeric `exclude` array (the
/// number/array hot path).
fn large_body() -> String {
    let query = "graph neural networks ".repeat(10_000);
    let exclude: Vec<String> = (0..35_000).map(|i| i.to_string()).collect();
    format!(
        r#"{{"query": "{query}", "top_k": 30, "max_year": 2020, "exclude": [{}]}}"#,
        exclude.join(",")
    )
}

/// The same body with escapes sprinkled through the string, so the
/// slow(er) path — literal runs interleaved with escape handling — is
/// pinned too.
fn escaped_body() -> String {
    let query = "graph \\\"neural\\\" networks\\n".repeat(10_000);
    format!(r#"{{"query": "{query}", "top_k": 30}}"#)
}

fn json_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("json_parse");
    group.sample_size(10);

    let body = large_body();
    println!("large body: {} bytes", body.len());
    group.bench_function("large_body_440kb", |b| {
        b.iter(|| {
            let value: Value = serde_json::from_str(black_box(&body)).unwrap();
            black_box(value)
        })
    });

    let escaped = escaped_body();
    println!("escaped body: {} bytes", escaped.len());
    group.bench_function("escaped_string_270kb", |b| {
        b.iter(|| {
            let value: Value = serde_json::from_str(black_box(&escaped)).unwrap();
            black_box(value)
        })
    });

    group.finish();

    // Self-check outside the timed region: the 440 KB body must parse well
    // under the 200 ms budget the serving layer assumes (the quadratic
    // parser took ~2 s). Generous 10x headroom over the budget would still
    // fail the old code by an order of magnitude.
    let started = std::time::Instant::now();
    let value: Value = serde_json::from_str(&body).unwrap();
    let elapsed = started.elapsed();
    black_box(value);
    println!("one-shot large-body parse: {elapsed:?}");
    assert!(
        elapsed < std::time::Duration::from_millis(200),
        "large-body parse regressed to {elapsed:?} (budget 200ms)"
    );
}

criterion_group!(benches, json_parse);
criterion_main!(benches);
