//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde's [`Value`] tree as JSON text.

pub use serde::value::Value;

use serde::value::format_number;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialisation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::DeError> for Error {
    fn from(e: serde::value::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                out.push_str(&format_number(*n));
            } else {
                // JSON has no infinities/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    /// Parses a JSON string by *byte-slice scanning*: runs of literal
    /// characters are located with one pass over the raw bytes (stopping
    /// only at `"` or `\`) and appended as a whole validated chunk, rather
    /// than pushing char-by-char — the naïve per-char loop re-validated the
    /// entire remaining input as UTF-8 for every character, which made
    /// string-heavy bodies quadratic (a 400 KB request body took seconds).
    /// The escape-free fast path is a single scan plus one allocation.
    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Scan the literal run up to the next quote or escape.
            let run_start = self.pos;
            let stop = self.bytes[run_start..]
                .iter()
                .position(|&b| b == b'"' || b == b'\\')
                .map(|rel| run_start + rel)
                .ok_or_else(|| Error::new("unterminated string"))?;
            if stop > run_start {
                let chunk = std::str::from_utf8(&self.bytes[run_start..stop])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?;
                if out.is_empty() && self.bytes[stop] == b'"' {
                    // The whole string is one escape-free run: a single
                    // allocation, no incremental pushes.
                    self.pos = stop + 1;
                    return Ok(chunk.to_string());
                }
                out.push_str(chunk);
            }
            self.pos = stop;
            if self.bytes[stop] == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            // An escape sequence.
            self.pos += 1;
            match self.peek() {
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'/') => out.push('/'),
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'b') => out.push('\u{8}'),
                Some(b'f') => out.push('\u{c}'),
                Some(b'u') => {
                    let hex = self
                        .bytes
                        .get(self.pos + 1..self.pos + 5)
                        .ok_or_else(|| Error::new("truncated \\u escape"))?;
                    let hex =
                        std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                    // Surrogate pairs are not needed for this corpus;
                    // map lone surrogates to the replacement char.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    self.pos += 4;
                }
                None => return Err(Error::new("unterminated string")),
                _ => return Err(Error::new("invalid escape sequence")),
            }
            self.pos += 1;
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("NEWST \"quoted\"\n".to_string()),
            ),
            (
                "values".to_string(),
                Value::Array(vec![Value::Number(0.1), Value::Number(3.0)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
        ]);
        let compact = to_string(&value).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back_compact: Value = from_str(&compact).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_compact, value);
        assert_eq!(back_pretty, value);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&vec![1usize, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn string_scanner_handles_every_escape_position() {
        // Escape first, middle, last, back-to-back, and escape-only — the
        // chunked scanner must stitch literal runs and escapes identically
        // to the old per-char loop.
        for (raw, expected) in [
            (r#""\nabc""#, "\nabc"),
            (r#""ab\tcd""#, "ab\tcd"),
            (r#""abc\\""#, "abc\\"),
            (r#""\\\"\\""#, "\\\"\\"),
            (r#""Axé""#, "Axé"),
            (r#""""#, ""),
            (
                r#""plain run with no escapes""#,
                "plain run with no escapes",
            ),
            ("\"unicode: héllo wörld ↑\"", "unicode: héllo wörld ↑"),
        ] {
            let value: Value = from_str(raw).unwrap();
            assert_eq!(value.as_str(), Some(expected), "raw {raw:?}");
        }
        for raw in [r#""unterminated"#, r#""bad \x escape""#, r#""trail\"#] {
            assert!(from_str::<Value>(raw).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn large_string_bodies_parse_in_linear_time() {
        // 256 KB of string content: the quadratic per-char parser took
        // seconds here; the scanner is a few milliseconds even in debug
        // builds. The assert is a generous ceiling, not a benchmark — the
        // real pinning lives in benches/parse.rs.
        let query = "graph neural networks ".repeat(12_000);
        let body = format!(r#"{{"query": "{query}", "k": [1,2,3]}}"#);
        let started = std::time::Instant::now();
        let value: Value = from_str(&body).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(
            value.get("query").and_then(Value::as_str).map(str::len),
            Some(query.len())
        );
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "256KB string parse took {elapsed:?} — quadratic again?"
        );
    }
}
